//! Equivalence + determinism suite for the stateful decoder API.
//!
//! For all four decoders (dense MWPM, sparse MWPM, union-find, greedy) and
//! fixed seeds, these tests assert the chain of identities the redesign
//! promises:
//!
//! `decode_batch` ≡ sequential `decode_syndrome`,
//!
//! plus determinism across repeated calls on a reused instance (stale
//! scratch must never leak between shots) and single-construction sharing of
//! the expensive precomputation.

use qec_core::circuit::DetectorBasis;
use qec_core::{NoiseParams, Rng};
use qec_decoder::{
    build_dem, scale_weight, DecodeOutcome, DecoderFactory, DecodingGraph, DetectorErrorModel,
    GreedyFactory, MwpmFactory, SparseMwpmFactory, Syndrome, UnionFindFactory,
};
use std::sync::Arc;
use surface_code::{MemoryExperiment, RotatedCode};

fn setup(d: usize, rounds: usize) -> (DecodingGraph, DetectorErrorModel) {
    let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
    (graph, dem)
}

/// Random multi-fault syndromes: XOR of 1–5 mechanism signatures each,
/// deterministic in `seed`.
fn random_syndromes(
    graph: &DecodingGraph,
    dem: &DetectorErrorModel,
    n: usize,
    seed: u64,
) -> Vec<Syndrome> {
    let mut rng = Rng::new(seed);
    let mut syndromes = Vec::with_capacity(n);
    for _ in 0..n {
        let mut events = vec![false; graph.num_nodes()];
        for _ in 0..(1 + rng.below(5)) {
            let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
            for &det in &mech.detectors {
                if let Some(node) = graph.node_of_detector(det) {
                    events[node] ^= true;
                }
            }
        }
        syndromes.push(Syndrome::new(
            (0..graph.num_nodes()).filter(|&v| events[v]).collect(),
        ));
    }
    syndromes
}

/// Flip/weight/defects must agree; `nanos` is wall-clock and excluded.
fn same_prediction(a: &DecodeOutcome, b: &DecodeOutcome) -> bool {
    a.flip == b.flip && a.weight == b.weight && a.defects == b.defects
}

fn check_equivalence(factory: &dyn DecoderFactory, syndromes: &[Syndrome]) {
    // Batch pass on one instance.
    let mut batch_decoder = factory.build();
    let mut batch = Vec::new();
    batch_decoder.decode_batch(syndromes, &mut batch);
    assert_eq!(batch.len(), syndromes.len());

    // Sequential pass on a *fresh* instance: per-shot must equal batch.
    let mut seq_decoder = factory.build();
    for (syndrome, batched) in syndromes.iter().zip(&batch) {
        let sequential = seq_decoder.decode_syndrome(syndrome);
        assert!(
            same_prediction(&sequential, batched),
            "[{}] decode_batch != decode_syndrome on {:?}: {batched:?} vs {sequential:?}",
            factory.name(),
            syndrome.defects,
        );
        assert_eq!(batched.defects, syndrome.len());
        assert!(batched.weight >= 0.0);
    }

    // Determinism: a second batch pass on the *reused* instance (warm
    // scratch) must reproduce the first bit-for-bit.
    let mut again = Vec::new();
    batch_decoder.decode_batch(syndromes, &mut again);
    for (first, second) in batch.iter().zip(&again) {
        assert!(
            same_prediction(first, second),
            "[{}] warm-scratch rerun diverged: {first:?} vs {second:?}",
            factory.name(),
        );
    }
}

#[test]
fn all_decoders_batch_and_sequential_agree() {
    for (d, rounds, seed) in [(3usize, 3usize, 42u64), (5, 3, 1337)] {
        let (graph, dem) = setup(d, rounds);
        let syndromes = random_syndromes(&graph, &dem, 120, seed);

        let mwpm = MwpmFactory::new(&graph);
        check_equivalence(&mwpm, &syndromes);

        let sparse = SparseMwpmFactory::new(&graph);
        check_equivalence(&sparse, &syndromes);

        let uf = UnionFindFactory::new(&graph);
        check_equivalence(&uf, &syndromes);

        let greedy = GreedyFactory::with_paths(&graph, Arc::clone(mwpm.paths()));
        check_equivalence(&greedy, &syndromes);
    }
}

/// The tentpole's acceptance bar: on random erasure-free multi-fault
/// batches, the sparse blossom produces the **same optimal correction
/// weight and the same observable flip** as the dense MWPM decoder —
/// compared in the shared integer weight domain ([`scale_weight`]), where
/// the equality is exact rather than within-epsilon.
#[test]
fn sparse_matches_dense_weight_and_flip_on_random_batches() {
    for (d, rounds, seed) in [(3usize, 4usize, 11u64), (5, 4, 23), (7, 3, 31)] {
        let (graph, dem) = setup(d, rounds);
        let syndromes = random_syndromes(&graph, &dem, 150, seed);
        let dense = MwpmFactory::new(&graph);
        let sparse = SparseMwpmFactory::new(&graph);
        let mut dense_dec = dense.build();
        let mut sparse_dec = sparse.build();
        for (i, syndrome) in syndromes.iter().enumerate() {
            let a = dense_dec.decode_syndrome(syndrome);
            let b = sparse_dec.decode_syndrome(syndrome);
            assert_eq!(
                scale_weight(a.weight),
                scale_weight(b.weight),
                "d={d} shot {i}: weight diverged (dense {} vs sparse {})",
                a.weight,
                b.weight
            );
            assert_eq!(a.flip, b.flip, "d={d} shot {i}: flip diverged");
            assert_eq!(a.defects, b.defects);
        }
    }
}

/// Erasure parity: with the `WeightOverlay` engaged (erased edges → ~0
/// weight), the sparse decoder's matched weight still equals dense MWPM's
/// in the integer domain on every shot. The *flip* can legitimately differ
/// on erasure shots — inside an erased cluster all pairings cost the same
/// and the two backends break the tie differently — so flip equality is
/// asserted only for erasure-free shots (where the paths are unique-cost).
#[test]
fn sparse_erasure_overlay_matches_dense_weight() {
    for (d, rounds, seed) in [(3usize, 4usize, 51u64), (5, 4, 67)] {
        let (graph, dem) = setup(d, rounds);
        let mut syndromes = random_syndromes(&graph, &dem, 120, seed);
        // Half the shots carry erasures; the rest interleave to exercise
        // overlay apply/restore on warm scratch.
        attach_random_erasures(&graph, &mut syndromes[..60], seed ^ 0xE5A5);
        let dense = MwpmFactory::new(&graph);
        let sparse = SparseMwpmFactory::new(&graph);
        let mut dense_dec = dense.build();
        let mut sparse_dec = sparse.build();
        for (i, syndrome) in syndromes.iter().enumerate() {
            let a = dense_dec.decode_syndrome(syndrome);
            let b = sparse_dec.decode_syndrome(syndrome);
            assert_eq!(
                scale_weight(a.weight),
                scale_weight(b.weight),
                "d={d} shot {i} ({} erasures): weight diverged (dense {} vs sparse {})",
                syndrome.erasures.len(),
                a.weight,
                b.weight
            );
            if syndrome.erasures.is_empty() {
                assert_eq!(a.flip, b.flip, "d={d} shot {i}: erasure-free flip diverged");
            }
        }
    }
}

#[test]
fn factory_precomputation_is_shared_not_recomputed() {
    let (graph, _) = setup(3, 3);
    let factory = MwpmFactory::new(&graph);
    let before = Arc::strong_count(factory.paths());
    let _a = factory.build();
    let _b = factory.build();
    let _c = factory.build();
    // Every instance clones the Arc instead of recomputing the O(n²) table.
    assert_eq!(Arc::strong_count(factory.paths()), before + 3);

    let uf = UnionFindFactory::new(&graph);
    let before = Arc::strong_count(uf.capacities());
    let _d = uf.build();
    let _e = uf.build();
    assert_eq!(Arc::strong_count(uf.capacities()), before + 2);

    let sparse = SparseMwpmFactory::new(&graph);
    let before = Arc::strong_count(sparse.index());
    let _f = sparse.build();
    let _g = sparse.build();
    // The boundary index is shared, never recomputed per instance.
    assert_eq!(Arc::strong_count(sparse.index()), before + 2);
}

#[test]
fn per_thread_instances_decode_identically() {
    let (graph, dem) = setup(3, 3);
    let syndromes = random_syndromes(&graph, &dem, 60, 7);
    let factory = MwpmFactory::new(&graph);
    let flips: Vec<Vec<bool>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let factory = &factory;
                let syndromes = &syndromes;
                scope.spawn(move || {
                    let mut decoder = factory.build();
                    let mut out = Vec::new();
                    decoder.decode_batch(syndromes, &mut out);
                    out.iter().map(|o| o.flip).collect::<Vec<bool>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for other in &flips[1..] {
        assert_eq!(&flips[0], other, "thread-local instances diverged");
    }
}

/// Random erasure sets: all edges incident to 1–3 random nodes (the shape
/// the runtime produces from leakage flags), deterministic in `seed`.
fn attach_random_erasures(graph: &DecodingGraph, syndromes: &mut [Syndrome], seed: u64) {
    let mut rng = Rng::new(seed);
    for syndrome in syndromes.iter_mut() {
        let hubs = 1 + rng.below(3);
        for _ in 0..hubs {
            let node = rng.below(graph.num_nodes() as u64) as usize;
            syndrome.erasures.extend_from_slice(graph.incident(node));
        }
        syndrome.erasures.sort_unstable();
        syndrome.erasures.dedup();
    }
}

/// An empty erasure set must decode **bit-identically** to the pre-overlay
/// path, for all three decoders — even on an instance whose overlay scratch
/// is warm from erasure-carrying shots.
#[test]
fn empty_erasure_set_is_bit_identical_to_plain_path() {
    let (graph, dem) = setup(3, 3);
    let plain = random_syndromes(&graph, &dem, 60, 21);
    let with_empty: Vec<Syndrome> = plain
        .iter()
        .map(|s| Syndrome::with_erasures(s.defects.clone(), Vec::new()))
        .collect();
    let mut erasure_warmup = plain.clone();
    attach_random_erasures(&graph, &mut erasure_warmup, 77);

    let mwpm = MwpmFactory::new(&graph);
    let sparse = SparseMwpmFactory::new(&graph);
    let uf = UnionFindFactory::new(&graph);
    let greedy = GreedyFactory::with_paths(&graph, Arc::clone(mwpm.paths()));
    let factories: [&dyn DecoderFactory; 4] = [&mwpm, &sparse, &uf, &greedy];
    for factory in factories {
        let mut reference = factory.build();
        let mut out_ref = Vec::new();
        reference.decode_batch(&plain, &mut out_ref);

        // Fresh instance, same defects but through `with_erasures(.., [])`.
        let mut fresh = factory.build();
        let mut out = Vec::new();
        fresh.decode_batch(&with_empty, &mut out);
        for (a, b) in out_ref.iter().zip(&out) {
            assert!(
                same_prediction(a, b),
                "[{}] empty erasure set diverged: {a:?} vs {b:?}",
                factory.name()
            );
        }

        // Warm the overlay scratch with erasure-carrying shots, then decode
        // the empty-erasure batch again: still bit-identical.
        let mut warm = factory.build();
        let mut scratch = Vec::new();
        warm.decode_batch(&erasure_warmup, &mut scratch);
        warm.decode_batch(&with_empty, &mut out);
        for (a, b) in out_ref.iter().zip(&out) {
            assert!(
                same_prediction(a, b),
                "[{}] warm-overlay empty-erasure decode diverged: {a:?} vs {b:?}",
                factory.name()
            );
        }
    }
}

/// Warm `WeightOverlay` scratch must be deterministic: repeated batches of
/// erasure-carrying syndromes on one reused instance reproduce themselves
/// bit-for-bit and match a fresh instance.
#[test]
fn warm_overlay_scratch_is_deterministic_across_batches() {
    let (graph, dem) = setup(3, 3);
    let mut syndromes = random_syndromes(&graph, &dem, 80, 5);
    attach_random_erasures(&graph, &mut syndromes, 99);
    assert!(syndromes.iter().any(|s| !s.erasures.is_empty()));

    let mwpm = MwpmFactory::new(&graph);
    let sparse = SparseMwpmFactory::new(&graph);
    let uf = UnionFindFactory::new(&graph);
    let greedy = GreedyFactory::with_paths(&graph, Arc::clone(mwpm.paths()));
    let factories: [&dyn DecoderFactory; 4] = [&mwpm, &sparse, &uf, &greedy];
    for factory in factories {
        let mut decoder = factory.build();
        let mut first = Vec::new();
        decoder.decode_batch(&syndromes, &mut first);
        let mut second = Vec::new();
        decoder.decode_batch(&syndromes, &mut second);
        for (a, b) in first.iter().zip(&second) {
            assert!(
                same_prediction(a, b),
                "[{}] warm overlay rerun diverged: {a:?} vs {b:?}",
                factory.name()
            );
        }
        let mut fresh = factory.build();
        let mut fresh_out = Vec::new();
        fresh.decode_batch(&syndromes, &mut fresh_out);
        for (a, b) in first.iter().zip(&fresh_out) {
            assert!(
                same_prediction(a, b),
                "[{}] warm vs fresh instance diverged: {a:?} vs {b:?}",
                factory.name()
            );
        }
    }
}

/// Erasing every edge along a defect pair's shortest path drives the pair's
/// matched weight to ~0 — the overlay is actually consuming the erasures.
#[test]
fn erasures_reduce_matched_weight() {
    let (graph, _) = setup(3, 3);
    let factory = MwpmFactory::new(&graph);
    // Pick a bulk edge and erase it: its two endpoint defects become free.
    let ei = graph
        .edges()
        .iter()
        .position(|e| e.b != graph.boundary())
        .expect("bulk edge");
    let e = &graph.edges()[ei];
    let mut decoder = factory.build();
    let plain = decoder.decode_syndrome(&Syndrome::new(vec![e.a, e.b]));
    let erased = decoder.decode_syndrome(&Syndrome::with_erasures(vec![e.a, e.b], vec![ei]));
    assert!(plain.weight > 0.1, "paths have real weight: {plain:?}");
    assert!(
        erased.weight < plain.weight,
        "erasure must cheapen the correction: {erased:?} vs {plain:?}"
    );
    assert_eq!(
        erased.flip, e.flips_observable,
        "parity rides the erased edge"
    );
}

#[test]
fn batch_output_vector_is_reused() {
    let (graph, dem) = setup(3, 2);
    let syndromes = random_syndromes(&graph, &dem, 10, 3);
    let factory = UnionFindFactory::new(&graph);
    let mut decoder = factory.build();
    // Pre-populated and over-sized output must be cleared, not appended to.
    let mut out = vec![DecodeOutcome::default(); 500];
    decoder.decode_batch(&syndromes, &mut out);
    assert_eq!(out.len(), syndromes.len());
}
