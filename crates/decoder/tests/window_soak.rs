//! Long-memory soak: d=5 over R=1000 rounds must decode under the windowed
//! path with peak decoder memory **independent of R** and stable, bounded
//! per-shot allocations.
//!
//! Monolithic MWPM at this size is not even constructible — the all-pairs
//! table would hold (12012+1)² ≈ 1.4·10⁸ entries ≈ 1.3 GB. The window plan
//! instead carries a handful of O(window²) shapes plus thin O(R) position
//! maps; this suite pins those properties with a counting **and
//! byte-tracking** global allocator (the same harness idea as
//! `tests/alloc.rs`, extended with live/peak byte accounting — it lives in
//! its own integration-test binary so the global counters see no
//! interference from concurrently running tests).

use qec_core::circuit::DetectorBasis;
use qec_core::{NoiseParams, Rng};
use qec_decoder::{build_dem, DecodingGraph, StreamingDecoder, WindowBackend, WindowPlan};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use surface_code::{MemoryExperiment, RotatedCode};

struct TrackingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn live_bytes() -> i64 {
    LIVE_BYTES.load(Ordering::Relaxed)
}

fn graph_for_rounds(rounds: usize) -> DecodingGraph {
    let exp = MemoryExperiment::new(RotatedCode::new(5), NoiseParams::standard(1e-3), rounds);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z)
}

/// Pre-sampled streaming shots: per shot, per round, the defect list — plus
/// an occasional erasure set — shaped like a p≈1e-3 run.
/// One streaming shot: (defects per round, erasure edges per round).
type StreamedShot = (Vec<Vec<usize>>, Vec<Vec<usize>>);

fn sample_shots(graph: &DecodingGraph, n_shots: usize) -> Vec<StreamedShot> {
    let mut rng = Rng::new(0x50AC);
    let span = graph.max_round() + 1;
    let mut shots = Vec::with_capacity(n_shots);
    for _ in 0..n_shots {
        let mut events = vec![false; graph.num_nodes()];
        // A long-memory shot accumulates many scattered faults.
        for _ in 0..span / 4 {
            let v = rng.below(graph.num_nodes() as u64) as usize;
            for &ei in graph.incident(v).iter().take(1) {
                let e = &graph.edges()[ei];
                events[e.a] ^= true;
                if e.b != graph.boundary() {
                    events[e.b] ^= true;
                }
            }
        }
        let mut by_round = vec![Vec::new(); span];
        for v in (0..graph.num_nodes()).filter(|&v| events[v]) {
            by_round[graph.node_round(v)].push(v);
        }
        let mut erasures = vec![Vec::new(); span];
        for r in (7..span).step_by(97) {
            let v = rng.below(graph.num_nodes() as u64) as usize;
            erasures[r].extend_from_slice(graph.incident(v));
        }
        shots.push((by_round, erasures));
    }
    shots
}

fn run_shots(dec: &mut dyn StreamingDecoder, shots: &[StreamedShot]) -> u64 {
    let mut flips = 0;
    for (by_round, erasures) in shots {
        dec.begin_shot();
        for (defects, erased) in by_round.iter().zip(erasures) {
            dec.push_round(defects, erased);
        }
        flips += u64::from(dec.finish().flip);
    }
    flips
}

#[test]
fn d5_r1000_windowed_decode_has_r_independent_peak_memory() {
    // Two experiment lengths, same window shape. (One #[test]: the global
    // counters must not interleave with another test's allocations.)
    let (window, stride) = (15usize, 10usize);

    let graph_short = graph_for_rounds(400);
    let plan_short = WindowPlan::new(&graph_short, window, stride, WindowBackend::Mwpm);

    let graph_long = graph_for_rounds(1000);
    let before_plan = live_bytes();
    let plan_long = WindowPlan::new(&graph_long, window, stride, WindowBackend::Mwpm);
    let plan_footprint = live_bytes() - before_plan;

    // (1) Shape count — and with it the APSP footprint — is independent of
    // R: the bulk windows are time-translation invariant.
    assert_eq!(
        plan_short.num_shapes(),
        plan_long.num_shapes(),
        "shape count must not grow with R"
    );
    assert!(plan_long.num_shapes() <= 4, "O(1) window shapes");
    assert!(plan_long.num_positions() >= 99);

    // (2) The plan's resident footprint is megabytes, not the ~1.3 GB the
    // monolithic APSP would need at this size; only the thin per-position
    // edge maps grow (linearly) with R.
    assert!(
        plan_footprint < (16 << 20),
        "plan footprint {plan_footprint} bytes"
    );
    assert!(
        plan_long.approx_decoder_bytes() < (8 << 20),
        "decode-state estimate {} bytes",
        plan_long.approx_decoder_bytes()
    );
    let per_shape_estimate = |p: &WindowPlan| p.approx_decoder_bytes() - p.num_positions() * 600;
    // APSP/shape tables at R=1000 cost the same as at R=400.
    let (short_est, long_est) = (
        per_shape_estimate(&plan_short),
        per_shape_estimate(&plan_long),
    );
    assert!(
        long_est < short_est + (1 << 20),
        "shape tables must not scale with R: {short_est} -> {long_est}"
    );

    // (3) Per-shot decoder allocations are bounded: decoding the same warm
    // batch twice costs an identical allocation count (nothing accumulates)
    // and leaves live bytes unchanged (nothing leaks, peak stays flat no
    // matter how many shots stream through).
    let shots = sample_shots(&graph_long, 12);
    let mut dec = plan_long.streaming();
    let warm_flips = run_shots(&mut dec, &shots);
    run_shots(&mut dec, &shots);

    let live_before = live_bytes();
    let count_before = allocations();
    let flips_a = run_shots(&mut dec, &shots);
    let first = allocations() - count_before;
    let live_mid = live_bytes();
    let count_mid = allocations();
    let flips_b = run_shots(&mut dec, &shots);
    let second = allocations() - count_mid;
    let live_after = live_bytes();

    assert_eq!(flips_a, warm_flips, "decode is deterministic");
    assert_eq!(flips_a, flips_b);
    assert_eq!(
        first, second,
        "repeated warm windowed batches must cost identically"
    );
    assert_eq!(
        live_before, live_mid,
        "steady-state decoding must not grow live memory"
    );
    assert_eq!(live_mid, live_after);
}
