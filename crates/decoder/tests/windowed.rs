//! Windowed ≡ monolithic equivalence suite.
//!
//! The load-bearing guarantees of the sliding-window decode path:
//!
//! * a window covering **all** rounds is bit-identical to the monolithic
//!   path for all three decoders (the correction-edge commit machinery is
//!   parity-exact, not merely approximate);
//! * real sliding windows (commit/buffer, re-injection) still correct every
//!   single fault mechanism exactly, and agree with monolithic decoding on
//!   nearly every random multi-fault syndrome;
//! * erasure indices are translated to window-local edge numbering — a
//!   regression test drives an erasure whose edge straddles window commit
//!   boundaries (with global numbering this either panics or erases the
//!   wrong edge).

use qec_core::circuit::DetectorBasis;
use qec_core::{NoiseParams, Rng};
use qec_decoder::{
    build_dem, DecodingGraph, DetectorErrorModel, StreamingDecoder, SyndromeDecoder, WindowBackend,
    WindowPlan,
};
use qec_decoder::{
    GreedyBatchDecoder, MwpmBatchDecoder, SparseMwpmDecoder, Syndrome, UnionFindBatchDecoder,
};
use surface_code::{MemoryExperiment, RotatedCode};

const BACKENDS: [WindowBackend; 4] = [
    WindowBackend::Mwpm,
    WindowBackend::SparseMwpm,
    WindowBackend::UnionFind,
    WindowBackend::Greedy,
];

fn setup(d: usize, rounds: usize) -> (DecodingGraph, DetectorErrorModel) {
    let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
    (graph, dem)
}

fn monolithic<'g>(
    backend: WindowBackend,
    graph: &'g DecodingGraph,
) -> Box<dyn SyndromeDecoder + 'g> {
    match backend {
        WindowBackend::Mwpm => Box::new(MwpmBatchDecoder::new(graph)),
        WindowBackend::SparseMwpm => Box::new(SparseMwpmDecoder::new(graph)),
        WindowBackend::UnionFind => Box::new(UnionFindBatchDecoder::new(graph)),
        WindowBackend::Greedy => Box::new(GreedyBatchDecoder::new(graph)),
    }
}

/// Samples a random multi-fault syndrome (defects ascending) and its true
/// observable flip.
fn sample_syndrome(
    graph: &DecodingGraph,
    dem: &DetectorErrorModel,
    rng: &mut Rng,
    faults: usize,
) -> (Vec<usize>, bool) {
    let mut events = vec![false; graph.num_nodes()];
    let mut expected = false;
    for _ in 0..faults {
        let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
        for &det in &mech.detectors {
            if let Some(node) = graph.node_of_detector(det) {
                events[node] ^= true;
            }
        }
        expected ^= mech.flips_observable;
    }
    let defects = (0..graph.num_nodes()).filter(|&n| events[n]).collect();
    (defects, expected)
}

/// Splits a sorted global defect list into per-round groups and streams them
/// through `dec`, returning the finished outcome.
fn stream_shot(
    dec: &mut dyn StreamingDecoder,
    graph: &DecodingGraph,
    defects: &[usize],
    erasures_by_round: &[Vec<usize>],
) -> qec_decoder::DecodeOutcome {
    dec.begin_shot();
    let mut i = 0;
    let empty = Vec::new();
    for r in 0..=graph.max_round() {
        let start = i;
        while i < defects.len() && graph.node_round(defects[i]) == r {
            i += 1;
        }
        let erasures = erasures_by_round.get(r).unwrap_or(&empty);
        dec.push_round(&defects[start..i], erasures);
    }
    assert_eq!(i, defects.len(), "defects must be round-major");
    dec.finish()
}

/// Property test: a window covering all rounds decodes bit-identically to
/// the monolithic path — same flip, same defect count — for all three
/// decoders, across many random syndromes.
#[test]
fn full_cover_window_is_bit_identical_to_monolithic() {
    for (d, rounds) in [(3usize, 4usize), (5, 3)] {
        let (graph, dem) = setup(d, rounds);
        let span = graph.max_round() + 1;
        for backend in BACKENDS {
            let plan = WindowPlan::new(&graph, span, span, backend);
            assert_eq!(plan.num_positions(), 1, "full cover is a single window");
            let mut windowed = plan.streaming();
            let mut mono = monolithic(backend, &graph);
            let mut rng = Rng::new(0xC0FFEE ^ d as u64);
            for trial in 0..120 {
                let faults = 1 + (trial % 5);
                let (defects, _) = sample_syndrome(&graph, &dem, &mut rng, faults);
                let mono_out =
                    mono.decode_syndrome(&Syndrome::with_rounds(defects.clone(), rounds));
                let win_out = stream_shot(&mut windowed, &graph, &defects, &[]);
                assert_eq!(
                    win_out.flip,
                    mono_out.flip,
                    "[{}] d={d} trial {trial}: full-cover window diverged",
                    backend.name()
                );
                assert_eq!(win_out.defects, mono_out.defects);
            }
        }
    }
}

/// Sliding windows (commit region, buffer, re-injection) must still correct
/// every single fault mechanism exactly: a fault's defect pair spans at most
/// two adjacent rounds, so it always falls jointly inside a window whose
/// commit chain resolves it.
#[test]
fn sliding_windows_correct_every_single_fault() {
    for (d, rounds, window, stride) in [(3usize, 10usize, 5usize, 2usize), (5, 8, 6, 1)] {
        let (graph, dem) = setup(d, rounds);
        for backend in BACKENDS {
            let plan = WindowPlan::new(&graph, window, stride, backend);
            assert!(plan.num_positions() > 3, "actually sliding");
            let mut windowed = plan.streaming();
            let mut checked = 0;
            for mech in &dem.mechanisms {
                let mut defects: Vec<usize> = mech
                    .detectors
                    .iter()
                    .filter_map(|&det| graph.node_of_detector(det))
                    .collect();
                defects.sort_unstable();
                if defects.is_empty() {
                    continue;
                }
                // Union-find and greedy are not distance-preserving on
                // decomposed hyperedges even monolithically; hold the exact
                // bar only where the monolithic decoder meets it (both
                // blossom backends do).
                let exact = matches!(backend, WindowBackend::Mwpm | WindowBackend::SparseMwpm);
                if !exact && defects.len() > 2 {
                    continue;
                }
                let out = stream_shot(&mut windowed, &graph, &defects, &[]);
                assert_eq!(
                    out.flip,
                    mech.flips_observable,
                    "[{}] d={d} w={window} s={stride}: single fault mis-corrected ({mech:?})",
                    backend.name()
                );
                checked += 1;
            }
            assert!(checked > 100, "too few mechanisms checked ({checked})");
        }
    }
}

/// Random multi-fault syndromes: sliding-window decoding agrees with the
/// monolithic decoder on nearly every shot (the buffer ≥ d overlap makes
/// divergence possible only for error chains longer than the buffer).
#[test]
fn sliding_windows_track_monolithic_on_random_syndromes() {
    let (graph, dem) = setup(3, 12);
    for backend in BACKENDS {
        let plan = WindowPlan::new(&graph, 6, 3, backend);
        let mut windowed = plan.streaming();
        let mut mono = monolithic(backend, &graph);
        let mut rng = Rng::new(0xFEED);
        let trials = 400i64;
        let mut agree = 0i64;
        let mut mono_ok = 0i64;
        let mut win_ok = 0i64;
        for trial in 0..trials {
            let faults = (1 + (trial % 6)) as usize;
            let (defects, expected) = sample_syndrome(&graph, &dem, &mut rng, faults);
            let m = mono
                .decode_syndrome(&Syndrome::with_rounds(defects.clone(), 12))
                .flip;
            let w = stream_shot(&mut windowed, &graph, &defects, &[]).flip;
            agree += i64::from(m == w);
            mono_ok += i64::from(m == expected);
            win_ok += i64::from(w == expected);
        }
        let rate = agree as f64 / trials as f64;
        assert!(
            rate > 0.95,
            "[{}] windowed/monolithic agreement too low: {rate}",
            backend.name()
        );
        // And windowed accuracy must not trail monolithic materially.
        assert!(
            mono_ok - win_ok < trials / 20,
            "[{}] windowed accuracy {win_ok}/{trials} vs monolithic {mono_ok}/{trials}",
            backend.name()
        );
    }
}

/// Regression (window-relative erasure translation): an erased time edge
/// that straddles window commit boundaries must be reweighted through
/// window-local indices. The edge here crosses the first window's upper
/// edge, is deferred once (its commit boundary lands on it), and commits two
/// windows later — with global indices this would erase the wrong edge or
/// panic in the overlay.
#[test]
fn erasure_straddling_a_window_boundary_is_window_relative() {
    let (graph, _) = setup(3, 12);
    let window = 5;
    let stride = 2;
    // A bulk time-like edge between rounds 4 and 5 = the first window's
    // upper boundary ([0, 4]).
    let ei = graph
        .edges()
        .iter()
        .position(|e| {
            e.b != graph.boundary() && graph.node_round(e.a) == 4 && graph.node_round(e.b) == 5
        })
        .expect("a (4, 5) time edge");
    let e = graph.edges()[ei].clone();
    let mut defects = vec![e.a, e.b];
    defects.sort_unstable();
    let mut erasures_by_round = vec![Vec::new(); graph.max_round() + 1];
    // The herald arrives when the later round completes, like the runtime's
    // leakage-detection read path.
    erasures_by_round[5] = vec![ei];

    for backend in BACKENDS {
        let plan = WindowPlan::new(&graph, window, stride, backend);
        let mut windowed = plan.streaming();
        let blind = stream_shot(&mut windowed, &graph, &defects, &[]);
        let aware = stream_shot(&mut windowed, &graph, &defects, &erasures_by_round);
        assert_eq!(
            aware.flip,
            e.flips_observable,
            "[{}] erased pair must be matched through its own edge",
            backend.name()
        );
        assert!(
            aware.weight < blind.weight.min(0.5 * e.weight) + 1e-9,
            "[{}] erasure must reach the window decoder: aware {} vs blind {} (edge {})",
            backend.name(),
            aware.weight,
            blind.weight,
            e.weight
        );
    }
}

/// The `decode_with_correction` contract the window committer relies on:
/// the emitted edges' observable-flip XOR equals the returned flip — for all
/// three decoders, with and without erasures — and the erasure-free outcome
/// is bit-identical to `decode_syndrome`.
#[test]
fn correction_edges_xor_to_the_outcome_flip() {
    let (graph, dem) = setup(3, 5);
    for backend in BACKENDS {
        let mut with = monolithic(backend, &graph);
        let mut without = monolithic(backend, &graph);
        let mut rng = Rng::new(0xEDCE ^ backend.name().len() as u64);
        let mut correction = Vec::new();
        for trial in 0..150 {
            let (defects, _) = sample_syndrome(&graph, &dem, &mut rng, 1 + trial % 4);
            let mut erasures = Vec::new();
            if trial % 3 == 0 {
                let v = rng.below(graph.num_nodes() as u64) as usize;
                erasures.extend_from_slice(graph.incident(v));
                erasures.sort_unstable();
                erasures.dedup();
            }
            let syndrome = Syndrome::build(defects)
                .rounds(5)
                .erasures(erasures)
                .finish();
            let out = with.decode_with_correction(&syndrome, &mut correction);
            let xor = correction
                .iter()
                .fold(false, |acc, &ei| acc ^ graph.edges()[ei].flips_observable);
            assert_eq!(
                xor,
                out.flip,
                "[{}] trial {trial}: correction edges disagree with the flip",
                backend.name()
            );
            if syndrome.erasures.is_empty() {
                let plain = without.decode_syndrome(&syndrome);
                assert_eq!(plain.flip, out.flip, "[{}] trial {trial}", backend.name());
                assert!((plain.weight - out.weight).abs() < 1e-6);
            }
        }
    }
}

/// The per-window latency probes cover every window and their committed
/// rounds tile the experiment exactly.
#[test]
fn window_latency_samples_tile_the_shot() {
    let (graph, dem) = setup(3, 9);
    let plan = WindowPlan::new(&graph, 4, 2, WindowBackend::Mwpm);
    let mut windowed = plan.streaming();
    let mut rng = Rng::new(7);
    let (defects, _) = sample_syndrome(&graph, &dem, &mut rng, 4);
    stream_shot(&mut windowed, &graph, &defects, &[]);
    let latencies = windowed.window_latencies();
    assert_eq!(latencies.len(), plan.num_positions());
    let committed: u32 = latencies.iter().map(|&(_, rounds)| rounds).sum();
    assert_eq!(committed as usize, graph.max_round() + 1);
}
