//! Fused ≡ sequential equivalence suite.
//!
//! The load-bearing guarantee of the partition + fusion decode path: at
//! **every** fusion thread count, for **all four** backends, with and
//! without erasure overlays, the [`FusionDecoder`] outcome is bit-identical
//! to the sequential [`WindowedDecoder`] — same flip, the exact same f64
//! weight bits, same defect count. The speculative leaf carries and the
//! merge-tree fix-up must be unobservable.

use qec_core::circuit::DetectorBasis;
use qec_core::{NoiseParams, Rng};
use qec_decoder::{
    build_dem, DecodingGraph, DetectorErrorModel, FusionDecoder, FusionPlan, FusionPool,
    StreamingDecoder, WindowBackend, WindowPlan,
};
use std::sync::Arc;
use surface_code::{MemoryExperiment, RotatedCode};

const BACKENDS: [WindowBackend; 4] = [
    WindowBackend::Mwpm,
    WindowBackend::SparseMwpm,
    WindowBackend::UnionFind,
    WindowBackend::Greedy,
];

fn setup(d: usize, rounds: usize) -> (DecodingGraph, DetectorErrorModel) {
    let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
    let detectors = exp.detectors();
    let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
    let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
    (graph, dem)
}

/// Samples a random multi-fault shot: per-round ascending defect groups plus
/// (on a third of the shots) a per-round erasure overlay heralded around a
/// random defect-adjacent node, like the runtime's leakage read path.
fn sample_shot(
    graph: &DecodingGraph,
    dem: &DetectorErrorModel,
    rng: &mut Rng,
    faults: usize,
    with_erasures: bool,
) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let mut events = vec![false; graph.num_nodes()];
    for _ in 0..faults {
        let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
        for &det in &mech.detectors {
            if let Some(node) = graph.node_of_detector(det) {
                events[node] ^= true;
            }
        }
    }
    let mut defects_by_round = vec![Vec::new(); graph.max_round() + 1];
    for node in (0..graph.num_nodes()).filter(|&n| events[n]) {
        defects_by_round[graph.node_round(node)].push(node);
    }
    let mut erasures_by_round = vec![Vec::new(); graph.max_round() + 1];
    if with_erasures {
        for _ in 0..1 + rng.below(3) {
            let v = rng.below(graph.num_nodes() as u64) as usize;
            let r = graph.node_round(v);
            erasures_by_round[r].extend_from_slice(graph.incident(v));
        }
    }
    (defects_by_round, erasures_by_round)
}

fn stream_shot(
    dec: &mut dyn StreamingDecoder,
    defects_by_round: &[Vec<usize>],
    erasures_by_round: &[Vec<usize>],
) -> qec_decoder::DecodeOutcome {
    dec.begin_shot();
    for (defects, erasures) in defects_by_round.iter().zip(erasures_by_round) {
        dec.push_round(defects, erasures);
    }
    dec.finish()
}

/// The tentpole property: fused output is bit-identical to the sequential
/// windowed path across fusion_threads ∈ {1, 2, 3, 8} × all four backends ×
/// erasure overlays. The d=3, R=17 span yields 8 window positions at
/// (w=6, s=2), so thread counts 3 and 8 exercise ragged and degenerate
/// (leaf-per-position) partitions on top of the even ones.
#[test]
fn fused_is_bit_identical_to_sequential_windowed() {
    let (graph, dem) = setup(3, 17);
    let (window, stride) = (6usize, 2usize);
    for backend in BACKENDS {
        let plan = Arc::new(WindowPlan::new(&graph, window, stride, backend));
        assert!(plan.num_positions() >= 7, "got {}", plan.num_positions());
        let mut sequential = plan.streaming();
        for threads in [1usize, 2, 3, 8] {
            let fplan = FusionPlan::new(Arc::clone(&plan), threads);
            let pool = Arc::new(FusionPool::new(threads));
            let mut fused = FusionDecoder::new(&fplan, pool);
            let mut rng = Rng::new(0xF051 ^ (threads as u64) << 8 ^ backend.name().len() as u64);
            for trial in 0..60 {
                let faults = 1 + trial % 7;
                let (defects, erasures) =
                    sample_shot(&graph, &dem, &mut rng, faults, trial % 3 == 0);
                let seq = stream_shot(&mut sequential, &defects, &erasures);
                let fus = stream_shot(&mut fused, &defects, &erasures);
                assert_eq!(
                    fus.flip,
                    seq.flip,
                    "[{} × {threads}t] trial {trial}: flip diverged",
                    backend.name()
                );
                assert_eq!(
                    fus.weight.to_bits(),
                    seq.weight.to_bits(),
                    "[{} × {threads}t] trial {trial}: weight not bit-identical \
                     (fused {} vs sequential {})",
                    backend.name(),
                    fus.weight,
                    seq.weight
                );
                assert_eq!(fus.defects, seq.defects);
            }
        }
    }
}

/// Ragged partition: a round count that doesn't divide into the leaf size
/// (11 positions over 4 threads → leaves of 3/3/3/2, odd block at every
/// merge level) must still be bit-identical, erasures included.
#[test]
fn ragged_partitions_fuse_exactly() {
    let (graph, dem) = setup(3, 23);
    let plan = Arc::new(WindowPlan::new(&graph, 5, 2, WindowBackend::Mwpm));
    let positions = plan.num_positions();
    assert_eq!(
        positions % 4,
        3,
        "want a ragged 4-way split, got {positions}"
    );
    let mut sequential = plan.streaming();
    let fplan = FusionPlan::new(Arc::clone(&plan), 4);
    let sizes: Vec<usize> = fplan.leaves().iter().map(|l| l.len()).collect();
    assert_eq!(sizes.iter().sum::<usize>(), positions);
    assert_eq!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap(), 1);
    let pool = Arc::new(FusionPool::new(4));
    let mut fused = FusionDecoder::new(&fplan, pool);
    let mut rng = Rng::new(0x4A66);
    for trial in 0..150 {
        let (defects, erasures) =
            sample_shot(&graph, &dem, &mut rng, 1 + trial % 9, trial % 2 == 0);
        let seq = stream_shot(&mut sequential, &defects, &erasures);
        let fus = stream_shot(&mut fused, &defects, &erasures);
        assert_eq!(fus.flip, seq.flip, "trial {trial}");
        assert_eq!(fus.weight.to_bits(), seq.weight.to_bits(), "trial {trial}");
    }
}

/// More fusion threads than window positions: the partition clamps to one
/// leaf per position and the tree still fuses to the sequential outcome.
#[test]
fn more_threads_than_positions_degenerates_cleanly() {
    let (graph, dem) = setup(3, 6);
    let plan = Arc::new(WindowPlan::new(&graph, 4, 3, WindowBackend::UnionFind));
    let positions = plan.num_positions();
    let fplan = FusionPlan::new(Arc::clone(&plan), 16);
    assert_eq!(fplan.leaves().len(), positions.min(16));
    assert!(fplan.leaves().iter().all(|l| !l.is_empty()));
    let pool = Arc::new(FusionPool::new(4));
    let mut sequential = plan.streaming();
    let mut fused = FusionDecoder::new(&fplan, pool);
    let mut rng = Rng::new(0xDE6E);
    for trial in 0..80 {
        let (defects, erasures) = sample_shot(&graph, &dem, &mut rng, 1 + trial % 5, false);
        let seq = stream_shot(&mut sequential, &defects, &erasures);
        let fus = stream_shot(&mut fused, &defects, &erasures);
        assert_eq!(fus.flip, seq.flip, "trial {trial}");
        assert_eq!(fus.weight.to_bits(), seq.weight.to_bits(), "trial {trial}");
    }
}

/// The fused latency probe: exactly one `(wall nanos, span rounds)` sample
/// per shot, covering the whole round span.
#[test]
fn fused_latency_is_one_sample_per_shot() {
    let (graph, dem) = setup(3, 9);
    let plan = Arc::new(WindowPlan::new(&graph, 4, 2, WindowBackend::Mwpm));
    let fplan = FusionPlan::new(Arc::clone(&plan), 2);
    let pool = Arc::new(FusionPool::new(2));
    let mut fused = FusionDecoder::new(&fplan, pool);
    let mut rng = Rng::new(11);
    let (defects, erasures) = sample_shot(&graph, &dem, &mut rng, 4, false);
    stream_shot(&mut fused, &defects, &erasures);
    assert_eq!(fused.shot_latencies().len(), 1);
    let (nanos, rounds) = fused.shot_latencies()[0];
    assert!(nanos > 0);
    assert_eq!(rounds as usize, graph.max_round() + 1);
    assert_eq!(fused.name(), "mwpm");
}
