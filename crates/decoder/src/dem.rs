//! Detector-error-model construction.
//!
//! For every explicit Pauli noise operation in a circuit (depolarizing
//! channels and X errors), each of its Pauli components maps to the set of
//! detectors it flips and whether it flips the logical observable; components
//! with identical signatures are merged with XOR-probability combination.
//! This mirrors what Stim's `detector_error_model` does for the circuits the
//! paper simulates.
//!
//! The builder walks the circuit **backwards**, maintaining for every qubit
//! the signature (detector set + observable bit) that an X or Z error at the
//! current position would produce. Gates transform signatures
//! (`H` swaps X/Z, `CNOT` accumulates control↔target), measurements inject
//! their detectors, resets clear. One pass over the circuit then prices every
//! noise site in O(signature size), independent of circuit length — the
//! forward-propagation alternative is quadratic because data-qubit errors
//! persist to the final transversal readout.
//!
//! Leakage operations carry no Pauli component and are skipped — the error
//! model (and hence the decoder) is leakage-blind by design. Every merged
//! mechanism does, however, record its fault **provenance**
//! ([`ErrorMechanism::sources`]): the op indices of the contributing noise
//! sites, which is what lets the runtime translate heralded leakage into
//! exact erased-edge sets. Tracking it costs a constant factor on model
//! construction — a once-per-graph price, invisible next to the Monte-Carlo
//! loop it serves.

use qec_core::{Circuit, DetectorInfo, MeasKey, Op};
use std::collections::HashMap;

/// One merged error mechanism: the detectors it flips, whether it flips the
/// logical observable, and its total probability.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorMechanism {
    /// Indices into the detector list the model was built against, sorted.
    pub detectors: Vec<usize>,
    /// Whether the mechanism flips the logical observable.
    pub flips_observable: bool,
    /// Merged probability (XOR-combined over contributing fault components).
    pub probability: f64,
    /// Provenance: the circuit op indices of every noise site that
    /// contributed a component to this mechanism, sorted and deduplicated.
    /// This is what lets a runtime translate "qubit X was leaked around op
    /// position P" into the exact set of heralded mechanisms (erasure
    /// decoding) instead of a hand-derived approximation.
    pub sources: Vec<u32>,
}

/// A circuit-level detector error model.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorErrorModel {
    /// Number of detectors in the underlying experiment.
    pub num_detectors: usize,
    /// Merged mechanisms.
    pub mechanisms: Vec<ErrorMechanism>,
}

/// The effect of a single Pauli error at a circuit position: which detectors
/// flip and whether the observable flips. Detector ids stay sorted.
#[derive(Debug, Clone, Default, PartialEq)]
struct Signature {
    dets: Vec<u32>,
    obs: bool,
}

impl Signature {
    fn clear(&mut self) {
        self.dets.clear();
        self.obs = false;
    }

    fn is_empty(&self) -> bool {
        self.dets.is_empty() && !self.obs
    }

    /// Symmetric difference (sorted-merge XOR) plus observable XOR.
    fn xor_with(&mut self, other: &Signature) {
        if other.dets.is_empty() {
            self.obs ^= other.obs;
            return;
        }
        let mut out = Vec::with_capacity(self.dets.len() + other.dets.len());
        let (a, b) = (&self.dets, &other.dets);
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        self.dets = out;
        self.obs ^= other.obs;
    }

    fn xor_of(a: &Signature, b: &Signature) -> Signature {
        let mut out = a.clone();
        out.xor_with(b);
        out
    }
}

/// XOR-combines two independent probabilities: P(exactly one fires).
pub(crate) fn combine_probability(a: f64, b: f64) -> f64 {
    a * (1.0 - b) + b * (1.0 - a)
}

/// Builds the detector error model of `circuit` against the given detector
/// definitions and observable keys.
///
/// # Panics
///
/// Panics if a detector or observable references a measurement key that is
/// out of range for the circuit.
pub fn build_dem(
    circuit: &Circuit,
    detectors: &[DetectorInfo],
    observable: &[MeasKey],
) -> DetectorErrorModel {
    let num_keys = circuit.num_keys();
    // Per-key signature: the detectors containing the key, plus observable
    // membership.
    let mut key_sig: Vec<Signature> = vec![Signature::default(); num_keys];
    for (idx, det) in detectors.iter().enumerate() {
        for &k in &det.keys {
            assert!(k < num_keys, "detector references unmeasured key {k}");
            key_sig[k].dets.push(idx as u32);
        }
    }
    for sig in &mut key_sig {
        sig.dets.sort_unstable();
    }
    for &k in observable {
        assert!(k < num_keys, "observable references unmeasured key {k}");
        key_sig[k].obs = true;
    }

    let nq = circuit.num_qubits();
    let mut sig_x: Vec<Signature> = vec![Signature::default(); nq];
    let mut sig_z: Vec<Signature> = vec![Signature::default(); nq];
    let mut merged: HashMap<(Vec<u32>, bool), (f64, Vec<u32>)> = HashMap::new();
    let mut record = |sig: Signature, p: f64, source: usize| {
        if sig.is_empty() || p <= 0.0 {
            return;
        }
        let entry = merged
            .entry((sig.dets, sig.obs))
            .or_insert((0.0, Vec::new()));
        entry.0 = combine_probability(entry.0, p);
        entry.1.push(source as u32);
    };

    for (op_idx, op) in circuit.ops().iter().enumerate().rev() {
        match *op {
            Op::Measure { qubit, key } => {
                // An X error before MZ flips the outcome (and persists, which
                // the signature already accounts for via later ops).
                let ks = key_sig[key].clone();
                sig_x[qubit].xor_with(&ks);
            }
            Op::Reset(q) => {
                sig_x[q].clear();
                sig_z[q].clear();
            }
            Op::H(q) => std::mem::swap(&mut sig_x[q], &mut sig_z[q]),
            Op::Cnot { control, target } | Op::CnotNoTransport { control, target } => {
                // Forward: X_c → X_c X_t, so an X on c also acts as X on t.
                let t = sig_x[target].clone();
                sig_x[control].xor_with(&t);
                // Forward: Z_t → Z_t Z_c.
                let c = sig_z[control].clone();
                sig_z[target].xor_with(&c);
            }
            Op::Depolarize1 { qubit, p } => {
                if p > 0.0 {
                    let share = p / 3.0;
                    record(sig_x[qubit].clone(), share, op_idx);
                    record(sig_z[qubit].clone(), share, op_idx);
                    record(
                        Signature::xor_of(&sig_x[qubit], &sig_z[qubit]),
                        share,
                        op_idx,
                    );
                }
            }
            Op::XError { qubit, p } => {
                record(sig_x[qubit].clone(), p, op_idx);
            }
            Op::Depolarize2 { a, b, p } => {
                if p > 0.0 {
                    let share = p / 15.0;
                    let pa = [
                        Signature::default(),
                        sig_x[a].clone(),
                        Signature::xor_of(&sig_x[a], &sig_z[a]),
                        sig_z[a].clone(),
                    ];
                    let pb = [
                        Signature::default(),
                        sig_x[b].clone(),
                        Signature::xor_of(&sig_x[b], &sig_z[b]),
                        sig_z[b].clone(),
                    ];
                    for (i, sa) in pa.iter().enumerate() {
                        for (j, sb) in pb.iter().enumerate() {
                            if i == 0 && j == 0 {
                                continue;
                            }
                            record(Signature::xor_of(sa, sb), share, op_idx);
                        }
                    }
                }
            }
            // Leakage channels and layer markers carry no Pauli component.
            Op::LeakInject { .. } | Op::Seep { .. } | Op::LeakIswap { .. } | Op::Tick => {}
        }
    }

    let mut mechanisms: Vec<ErrorMechanism> = merged
        .into_iter()
        .map(
            |((dets, flips_observable), (probability, mut sources))| ErrorMechanism {
                detectors: dets.into_iter().map(|d| d as usize).collect(),
                flips_observable,
                probability,
                sources: {
                    sources.sort_unstable();
                    sources.dedup();
                    sources
                },
            },
        )
        .collect();
    mechanisms.sort_by(|a, b| {
        a.detectors
            .cmp(&b.detectors)
            .then(a.flips_observable.cmp(&b.flips_observable))
    });
    DetectorErrorModel {
        num_detectors: detectors.len(),
        mechanisms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qec_core::circuit::DetectorBasis;

    /// Hand-built repetition-code-flavoured circuit: two data qubits, one
    /// parity qubit measuring their Z-parity, repeated twice.
    fn tiny_circuit() -> (Circuit, Vec<DetectorInfo>, Vec<MeasKey>) {
        let mut c = Circuit::new(3);
        c.alloc_keys(4);
        // round 0
        c.push(Op::Depolarize1 { qubit: 0, p: 0.01 });
        c.push(Op::Depolarize1 { qubit: 1, p: 0.01 });
        c.push(Op::Cnot {
            control: 0,
            target: 2,
        });
        c.push(Op::Cnot {
            control: 1,
            target: 2,
        });
        c.push(Op::XError { qubit: 2, p: 0.02 });
        c.push(Op::Measure { qubit: 2, key: 0 });
        c.push(Op::Reset(2));
        // round 1
        c.push(Op::Cnot {
            control: 0,
            target: 2,
        });
        c.push(Op::Cnot {
            control: 1,
            target: 2,
        });
        c.push(Op::Measure { qubit: 2, key: 1 });
        c.push(Op::Reset(2));
        // final data readout
        c.push(Op::Measure { qubit: 0, key: 2 });
        c.push(Op::Measure { qubit: 1, key: 3 });
        let detectors = vec![
            DetectorInfo {
                keys: vec![0],
                basis: DetectorBasis::Z,
                stabilizer: 0,
                round: 0,
            },
            DetectorInfo {
                keys: vec![0, 1],
                basis: DetectorBasis::Z,
                stabilizer: 0,
                round: 1,
            },
            DetectorInfo {
                keys: vec![1, 2, 3],
                basis: DetectorBasis::Z,
                stabilizer: 0,
                round: 2,
            },
        ];
        let observable = vec![2];
        (c, detectors, observable)
    }

    #[test]
    fn measurement_flip_fires_two_detectors() {
        let (c, dets, obs) = tiny_circuit();
        let dem = build_dem(&c, &dets, &obs);
        // The X error before the round-0 measurement flips detectors 0 and 1
        // (outcome flip, then state flip cancelled by reset).
        let mech = dem
            .mechanisms
            .iter()
            .find(|m| m.detectors == vec![0, 1])
            .expect("measurement-flip mechanism");
        assert!(!mech.flips_observable);
        assert!(mech.probability > 0.0);
    }

    #[test]
    fn data_error_flips_detectors_and_observable() {
        let (c, dets, obs) = tiny_circuit();
        let dem = build_dem(&c, &dets, &obs);
        let mech = dem
            .mechanisms
            .iter()
            .find(|m| m.flips_observable)
            .expect("observable-flipping mechanism");
        assert!(!mech.detectors.is_empty());
        // Its probability must include both the X and Y components of the
        // round-0 depolarizing channel on qubit 0, XOR-combined.
        let p_each = 0.01 / 3.0;
        let expected = combine_probability(p_each, p_each);
        assert!((mech.probability - expected).abs() < 1e-12);
    }

    #[test]
    fn every_mechanism_fires_something() {
        let (c, dets, obs) = tiny_circuit();
        let dem = build_dem(&c, &dets, &obs);
        for mech in &dem.mechanisms {
            assert!(!mech.detectors.is_empty() || mech.flips_observable);
        }
    }

    #[test]
    fn probabilities_in_unit_interval() {
        let (c, dets, obs) = tiny_circuit();
        let dem = build_dem(&c, &dets, &obs);
        for mech in &dem.mechanisms {
            assert!(mech.probability > 0.0 && mech.probability < 1.0);
        }
    }

    #[test]
    fn mechanisms_carry_fault_provenance() {
        let (c, dets, obs) = tiny_circuit();
        let dem = build_dem(&c, &dets, &obs);
        for mech in &dem.mechanisms {
            assert!(!mech.sources.is_empty(), "every mechanism has a source");
            assert!(mech.sources.windows(2).all(|w| w[0] < w[1]), "sorted");
            for &src in &mech.sources {
                // Sources are noise sites, never gates or measurements.
                assert!(matches!(
                    c.ops()[src as usize],
                    Op::Depolarize1 { .. } | Op::Depolarize2 { .. } | Op::XError { .. }
                ));
            }
        }
        // The round-0 measurement-flip mechanism's source is the XError in
        // front of the round-0 measurement (op index 4).
        let mech = dem
            .mechanisms
            .iter()
            .find(|m| m.detectors == vec![0, 1])
            .expect("measurement-flip mechanism");
        assert_eq!(mech.sources, vec![4]);
    }

    #[test]
    fn combine_probability_is_xor() {
        assert!((combine_probability(0.5, 0.5) - 0.5).abs() < 1e-12);
        assert!((combine_probability(0.0, 0.3) - 0.3).abs() < 1e-12);
        assert!(combine_probability(0.1, 0.1) < 0.2);
    }

    #[test]
    fn zero_probability_channels_are_skipped() {
        let mut c = Circuit::new(1);
        c.alloc_keys(1);
        c.push(Op::Depolarize1 { qubit: 0, p: 0.0 });
        c.push(Op::Measure { qubit: 0, key: 0 });
        let dets = vec![DetectorInfo {
            keys: vec![0],
            basis: DetectorBasis::Z,
            stabilizer: 0,
            round: 0,
        }];
        let dem = build_dem(&c, &dets, &[]);
        assert!(dem.mechanisms.is_empty());
    }

    #[test]
    fn signature_xor_is_symmetric_difference() {
        let a = Signature {
            dets: vec![1, 3, 5],
            obs: true,
        };
        let b = Signature {
            dets: vec![3, 4],
            obs: true,
        };
        let c = Signature::xor_of(&a, &b);
        assert_eq!(c.dets, vec![1, 4, 5]);
        assert!(!c.obs);
        // XOR with self annihilates.
        assert!(Signature::xor_of(&a, &a).is_empty());
    }

    /// Cross-check the backward builder against literal forward frame
    /// propagation on the tiny circuit: inject each X/Z error explicitly and
    /// verify the recorded mechanism matches.
    #[test]
    fn backward_pass_matches_forward_injection() {
        use qec_core::Pauli;
        let (c, dets, obs) = tiny_circuit();
        let dem = build_dem(&c, &dets, &obs);
        // Manually propagate an X error on qubit 0 at position 2 (right after
        // its depolarizing site): flips k0, k1 (parity readouts) and k2
        // (final data readout = observable).
        let mut flips = [false; 4];
        {
            // X on qubit 0 propagates through both CNOTs onto qubit 2 and
            // flips every measurement of qubit 0 and the copies on qubit 2.
            flips[0] ^= true; // round-0 parity
            flips[1] ^= true; // round-1 parity
            flips[2] ^= true; // final readout of qubit 0
        }
        let det_fired: Vec<usize> = dets
            .iter()
            .enumerate()
            .filter(|(_, d)| d.keys.iter().fold(false, |acc, &k| acc ^ flips[k]))
            .map(|(i, _)| i)
            .collect();
        let obs_fired = obs.iter().fold(false, |acc, &k| acc ^ flips[k]);
        assert!(
            dem.mechanisms
                .iter()
                .any(|m| m.detectors == det_fired && m.flips_observable == obs_fired),
            "missing mechanism {det_fired:?}/{obs_fired}; have {:?}",
            dem.mechanisms
                .iter()
                .map(|m| (&m.detectors, m.flips_observable))
                .collect::<Vec<_>>(),
        );
        let _ = Pauli::X;
    }
}
