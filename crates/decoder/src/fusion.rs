//! Intra-shot parallel decoding: partition + fusion over the round-indexed
//! window chain.
//!
//! All other parallelism in this workspace is *across* shots (worker threads
//! × 64-lane stripes); a single shot's windows still decode strictly
//! sequentially, so per-shot decode latency — the number that decides
//! whether the adaptive loop can run in real time against the hardware's
//! sub-µs-per-round budget — does not improve with cores. This module adopts
//! the fusion-blossom partition/fusion architecture on top of the sliding
//! window machinery that PR 5 built:
//!
//! ```text
//!   positions  0  1  2  3 | 4  5  6  7 | 8  9 10 11 |12 13 14 15
//!   leaves     [  leaf 0  ] [  leaf 1  ] [  leaf 2  ] [  leaf 3 ]
//!                    \          /             \           /
//!   merge 1           [ 0 ∪ 1 ]               [ 2 ∪ 3 ]
//!                          \                     /
//!   merge 2                 [    0 ∪ 1 ∪ 2 ∪ 3   ]   →  shot outcome
//! ```
//!
//! A [`FusionPlan`] splits a [`WindowPlan`]'s position chain into contiguous
//! **leaf blocks** (one per fusion thread). A [`FusionDecoder`] buffers the
//! shot's rounds, then decodes the leaves concurrently on a [`FusionPool`] —
//! each leaf **speculatively**, assuming an empty carried defect set at its
//! left edge. Adjacent blocks are then fused up a balanced binary tree: each
//! merge replays the right block's boundary region seeded with the left
//! block's actual carry-out, stopping as soon as the replayed carry chain
//! reconverges with what the right block already computed (boundary
//! influence decays within about a window of rounds at sub-threshold defect
//! density, so convergence is almost always immediate — but correctness
//! never depends on it: in the worst case the merge replays the whole right
//! block).
//!
//! The per-position replay (`WindowedDecoder::replay_position`) is the
//! *exact* streaming commit/buffer algebra — same per-shape decoder
//! instances, same erasure translation to block-local edge numbering, same
//! commit rules, and the same position-ordered fold of the non-associative
//! f64 weight partials. Leaf 0's speculative assumption (no carried defects
//! before round 0) is the sequential initial condition, and every merge
//! preserves the invariant that each block's internal carry chain is
//! consistent; after the root merge the whole chain therefore equals the
//! sequential one, making the fused outcome **bit-identical** to
//! [`WindowPlan::streaming`] at every thread count (asserted per backend and
//! under erasure overlays by `tests/fusion.rs`).

use crate::api::DecodeOutcome;
use crate::predecode::TierCounters;
use crate::window::{StreamingDecoder, WindowPlan, WindowedDecoder};
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// A small std-only worker pool for intra-shot fusion decoding.
///
/// `threads − 1` persistent workers are spawned up front (the caller of
/// [`FusionPool::run`] participates as worker 0, so `threads = 1` spawns
/// nothing and runs inline); each `run` publishes a task count and a borrowed
/// job closure, and workers race on a shared task-index counter — cheap
/// dynamic load balancing for the chunky (whole-leaf / whole-merge) tasks
/// fusion schedules. Create one per shot-worker thread and share it across
/// that worker's lane decoders via `Arc`.
pub struct FusionPool {
    shared: Arc<PoolShared>,
    workers: usize,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for FusionPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FusionPool")
            .field("workers", &self.workers)
            .finish()
    }
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signals workers: a new job generation was published (or shutdown).
    work_ready: Condvar,
    /// Signals the `run` caller: all tasks of the current generation done.
    work_done: Condvar,
}

/// The borrowed `run` closure with its lifetime erased.
///
/// # Safety
///
/// The pointer is published under the pool mutex and copied out only when a
/// task of the matching generation is claimed; `run` does not return until
/// `completed == tasks` (and `completed` is bumped only after the closure
/// call finishes), so every dereference happens while the original borrow is
/// still on the caller's stack.
#[derive(Clone, Copy)]
struct ErasedJob(*const (dyn Fn(usize, usize) + Sync));

unsafe impl Send for ErasedJob {}

struct PoolState {
    job: Option<ErasedJob>,
    generation: u64,
    tasks: usize,
    next_task: usize,
    completed: usize,
    panicked: bool,
    shutdown: bool,
}

impl FusionPool {
    /// Builds a pool with `threads` workers total (clamped to ≥ 1). The
    /// calling thread counts as worker 0, so `threads − 1` OS threads are
    /// spawned.
    pub fn new(threads: usize) -> FusionPool {
        let workers = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                job: None,
                generation: 0,
                tasks: 0,
                next_task: 0,
                completed: 0,
                panicked: false,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            work_done: Condvar::new(),
        });
        let handles = (1..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fusion-{w}"))
                    .spawn(move || Self::worker_loop(&shared, w))
                    .expect("spawn fusion worker")
            })
            .collect();
        FusionPool {
            shared,
            workers,
            handles,
        }
    }

    /// Total worker count, the caller included.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(worker, task)` for every `task` in `0..tasks`, distributing
    /// tasks across the workers, and returns once **all** tasks finished.
    /// `worker` is in `0..self.workers()` and two concurrent calls never
    /// share a worker index, so per-worker scratch needs no locking beyond a
    /// `Mutex` per slot.
    ///
    /// Not reentrant: `f` must not call back into `run` on the same pool.
    ///
    /// # Panics
    ///
    /// Propagates (as a fresh panic) if any task panicked.
    pub fn run(&self, tasks: usize, f: &(dyn Fn(usize, usize) + Sync)) {
        if tasks == 0 {
            return;
        }
        if self.workers == 1 || tasks == 1 {
            // Nothing to distribute: run inline without touching the pool.
            for t in 0..tasks {
                f(0, t);
            }
            return;
        }

        // Erase the closure's lifetime. Sound per the `ErasedJob` contract:
        // this function does not return until every claimed task completed.
        let job = ErasedJob(unsafe {
            std::mem::transmute::<
                &(dyn Fn(usize, usize) + Sync),
                *const (dyn Fn(usize, usize) + Sync),
            >(f)
        });
        {
            let mut st = self.shared.state.lock().unwrap();
            assert!(st.job.is_none(), "FusionPool::run is not reentrant");
            st.job = Some(job);
            st.generation += 1;
            st.tasks = tasks;
            st.next_task = 0;
            st.completed = 0;
            st.panicked = false;
            self.shared.work_ready.notify_all();
        }

        // The caller participates as worker 0.
        Self::drain_tasks(&self.shared, 0);

        let mut st = self.shared.state.lock().unwrap();
        while st.completed < st.tasks {
            st = self.shared.work_done.wait(st).unwrap();
        }
        st.job = None;
        let panicked = st.panicked;
        drop(st);
        if panicked {
            panic!("a fusion pool task panicked");
        }
    }

    /// Claims and executes tasks of the current generation until none are
    /// left. Shared by the `run` caller and the spawned workers.
    fn drain_tasks(shared: &PoolShared, worker: usize) {
        loop {
            let (job, task) = {
                let mut st = shared.state.lock().unwrap();
                if st.job.is_none() || st.next_task >= st.tasks {
                    return;
                }
                let task = st.next_task;
                st.next_task += 1;
                (st.job.expect("checked above"), task)
            };
            // Safety: see `ErasedJob` — the claim above happened under the
            // lock within the publishing generation, and `run` blocks until
            // `completed == tasks`.
            let f = unsafe { &*job.0 };
            let outcome = catch_unwind(AssertUnwindSafe(|| f(worker, task)));
            let mut st = shared.state.lock().unwrap();
            if outcome.is_err() {
                st.panicked = true;
            }
            st.completed += 1;
            if st.completed == st.tasks {
                shared.work_done.notify_all();
            }
        }
    }

    fn worker_loop(shared: &PoolShared, worker: usize) {
        let mut seen_generation = 0u64;
        loop {
            {
                let mut st = shared.state.lock().unwrap();
                loop {
                    if st.shutdown {
                        return;
                    }
                    if st.job.is_some() && st.generation != seen_generation {
                        seen_generation = st.generation;
                        break;
                    }
                    st = shared.work_ready.wait(st).unwrap();
                }
            }
            Self::drain_tasks(shared, worker);
        }
    }
}

impl Drop for FusionPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The fusion partition of a [`WindowPlan`]: the position chain split into
/// `min(threads, positions)` contiguous, near-equal leaf blocks. Shapes and
/// their `ShortestPaths` / `SparseIndex` / `UnionFindCapacities` tables stay
/// deduplicated in the underlying plan — fusion adds only this partition (a
/// few dozen bytes), so it caches almost for free next to the window plan.
#[derive(Debug)]
pub struct FusionPlan {
    plan: Arc<WindowPlan>,
    threads: usize,
    leaves: Vec<Range<usize>>,
}

impl FusionPlan {
    /// Partitions `plan`'s positions into one leaf block per fusion thread
    /// (clamped to the position count — a plan shorter than the thread count
    /// simply yields fewer, still non-empty, leaves). Ragged spans are
    /// handled by giving the first `positions % leaves` blocks one extra
    /// position.
    pub fn new(plan: Arc<WindowPlan>, threads: usize) -> FusionPlan {
        let threads = threads.max(1);
        let n = plan.num_positions();
        let leaf_count = threads.min(n).max(1);
        let (base, extra) = (n / leaf_count, n % leaf_count);
        let mut leaves = Vec::with_capacity(leaf_count);
        let mut start = 0;
        for i in 0..leaf_count {
            let len = base + usize::from(i < extra);
            leaves.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, n);
        FusionPlan {
            plan,
            threads,
            leaves,
        }
    }

    /// The underlying sliding-window plan.
    pub fn window_plan(&self) -> &Arc<WindowPlan> {
        &self.plan
    }

    /// The fusion thread count this plan was partitioned for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The leaf blocks (contiguous position ranges, in order).
    pub fn leaves(&self) -> &[Range<usize>] {
        &self.leaves
    }

    /// Approximate resident bytes of the partition itself. The shared
    /// [`WindowPlan`] is priced by its own cache entry — counting it again
    /// here would double-bill the artifact cache.
    pub fn approx_bytes(&self) -> usize {
        std::mem::size_of::<FusionPlan>() + self.leaves.len() * std::mem::size_of::<Range<usize>>()
    }
}

/// One window position's fused decode state: the carry chain link and the
/// position's outcome partials.
#[derive(Default)]
struct PositionRecord {
    carry_in: Vec<usize>,
    carry_out: Vec<usize>,
    flip: bool,
    weight: f64,
}

/// The intra-shot parallel [`StreamingDecoder`]: buffers pushed rounds, then
/// at [`StreamingDecoder::finish`] decodes leaf blocks concurrently and
/// fuses them up the balanced merge tree. Bit-identical to the sequential
/// [`WindowedDecoder`] (see the module docs for why); the per-shot latency
/// sample is the *wall time* of `finish` — the number fusion actually
/// improves — rather than the sequential path's summed per-window times.
pub struct FusionDecoder<'p> {
    plan: &'p FusionPlan,
    pool: Arc<FusionPool>,
    /// One replay engine per pool worker, locked for the duration of a leaf
    /// or merge task (worker indices are exclusive per `run`, so the lock is
    /// uncontended — it exists to make the `&self` task closures safe).
    engines: Vec<Mutex<WindowedDecoder<'p>>>,
    records: Vec<Mutex<PositionRecord>>,
    /// Flat per-shot defect buffer (global node ids) + per-round offsets:
    /// `defect_starts[r]` is the index of round `r`'s first defect.
    defects: Vec<usize>,
    defect_starts: Vec<usize>,
    /// Flat erasure buffer (global edge indices, push order) + offsets.
    erasures: Vec<usize>,
    erasure_starts: Vec<usize>,
    round_cursor: usize,
    total_defects: usize,
    /// One `(nanos, rounds)` sample per shot (cleared by `begin_shot`).
    latencies: Vec<(u64, u32)>,
}

impl<'p> FusionDecoder<'p> {
    /// Builds a fused decoder over `plan`, scheduling on `pool`. One replay
    /// engine is stamped out per pool worker from the plan's shared shape
    /// tables (cheap: `Arc` clones plus empty scratch).
    pub fn new(plan: &'p FusionPlan, pool: Arc<FusionPool>) -> FusionDecoder<'p> {
        let wp: &'p WindowPlan = plan.window_plan();
        let engines = (0..pool.workers())
            .map(|_| Mutex::new(wp.streaming()))
            .collect();
        let records = (0..wp.num_positions())
            .map(|_| Mutex::new(PositionRecord::default()))
            .collect();
        FusionDecoder {
            plan,
            pool,
            engines,
            records,
            defects: Vec::new(),
            defect_starts: Vec::new(),
            erasures: Vec::new(),
            erasure_starts: Vec::new(),
            round_cursor: 0,
            total_defects: 0,
            latencies: Vec::new(),
        }
    }

    /// The fusion plan this decoder runs.
    pub fn plan(&self) -> &FusionPlan {
        self.plan
    }

    /// Per-shot decode latency samples: `(wall nanos of finish, rounds
    /// spanned)` — one entry per decoded shot since `begin_shot`. The fused
    /// counterpart of [`WindowedDecoder::window_latencies`].
    pub fn shot_latencies(&self) -> &[(u64, u32)] {
        &self.latencies
    }

    /// Enables or disables the tiered fast path on every replay engine
    /// (default on; see [`WindowedDecoder::set_predecode`]). Call before
    /// decoding — engines are only touched between shots.
    pub fn set_predecode(&mut self, on: bool) {
        for engine in &self.engines {
            engine.lock().unwrap().set_predecode(on);
        }
    }

    /// Per-tier telemetry merged across every replay engine. Counts decode
    /// *attempts*: a position replayed again during a merge contributes a
    /// second sample, so totals can exceed the position count — hit *rates*
    /// remain meaningful.
    pub fn tier_counters(&self) -> TierCounters {
        let mut total = TierCounters::default();
        for engine in &self.engines {
            total.merge(engine.lock().unwrap().tier_counters());
        }
        total
    }

    fn flat_start(starts: &[usize], flat_len: usize, round: usize) -> usize {
        starts.get(round).copied().unwrap_or(flat_len)
    }

    /// The fresh defects position `k` consumes: rounds `(hi_{k−1}, hi_k]`.
    fn fresh(&self, k: usize) -> &[usize] {
        let wp = self.plan.window_plan();
        let from = if k == 0 { 0 } else { wp.position_hi(k - 1) + 1 };
        let a = Self::flat_start(&self.defect_starts, self.defects.len(), from);
        let b = Self::flat_start(
            &self.defect_starts,
            self.defects.len(),
            wp.position_hi(k) + 1,
        );
        &self.defects[a..b]
    }

    /// Every erasure pushed by the time position `k` decodes sequentially
    /// (rounds `0..=hi_k`). A superset of the sequential live set is fine:
    /// the sequential path only retires erasures that no remaining window's
    /// edge range can contain, so the extras never map into position `k`.
    fn erasures_through(&self, k: usize) -> &[usize] {
        let hi = self.plan.window_plan().position_hi(k);
        let b = Self::flat_start(&self.erasure_starts, self.erasures.len(), hi + 1);
        &self.erasures[..b]
    }

    /// Leaf task: decode the leaf's positions in order, speculating an empty
    /// carry at the leaf's left edge.
    fn decode_leaf(&self, worker: usize, leaf: usize) {
        let range = self.plan.leaves()[leaf].clone();
        let mut engine = self.engines[worker].lock().unwrap();
        let mut carry: Vec<usize> = Vec::new();
        let mut carry_out: Vec<usize> = Vec::new();
        for k in range {
            let (flip, weight) = engine.replay_position(
                k,
                &carry,
                self.fresh(k),
                self.erasures_through(k),
                &mut carry_out,
            );
            let mut rec = self.records[k].lock().unwrap();
            rec.flip = flip;
            rec.weight = weight;
            rec.carry_in.clear();
            rec.carry_in.extend_from_slice(&carry);
            rec.carry_out.clear();
            rec.carry_out.extend_from_slice(&carry_out);
            drop(rec);
            std::mem::swap(&mut carry, &mut carry_out);
        }
    }

    /// Merge task: fuse two adjacent blocks by replaying the right block's
    /// positions with the left block's actual carry-out, stopping at the
    /// first position whose recorded carry-in already matches (from there on
    /// the right block's chain is a valid continuation and splices
    /// wholesale).
    fn merge(&self, worker: usize, left: &Range<usize>, right: &Range<usize>) {
        debug_assert_eq!(left.end, right.start, "merging non-adjacent blocks");
        let mut carry = self.records[left.end - 1].lock().unwrap().carry_out.clone();
        let mut engine = self.engines[worker].lock().unwrap();
        let mut carry_out: Vec<usize> = Vec::new();
        for k in right.clone() {
            if self.records[k].lock().unwrap().carry_in == carry {
                return; // reconverged with the speculative chain
            }
            let (flip, weight) = engine.replay_position(
                k,
                &carry,
                self.fresh(k),
                self.erasures_through(k),
                &mut carry_out,
            );
            let mut rec = self.records[k].lock().unwrap();
            rec.flip = flip;
            rec.weight = weight;
            rec.carry_in.clear();
            rec.carry_in.extend_from_slice(&carry);
            rec.carry_out.clear();
            rec.carry_out.extend_from_slice(&carry_out);
            drop(rec);
            std::mem::swap(&mut carry, &mut carry_out);
        }
    }
}

impl StreamingDecoder for FusionDecoder<'_> {
    fn begin_shot(&mut self) {
        self.defects.clear();
        self.defect_starts.clear();
        self.erasures.clear();
        self.erasure_starts.clear();
        self.round_cursor = 0;
        self.total_defects = 0;
        self.latencies.clear();
    }

    fn push_round(&mut self, defects: &[usize], erasures: &[usize]) {
        let r = self.round_cursor;
        assert!(
            r <= self.plan.window_plan().max_round(),
            "round {r} beyond the experiment"
        );
        debug_assert!(
            defects.windows(2).all(|w| w[0] < w[1]),
            "per-round defects must be ascending"
        );
        self.defect_starts.push(self.defects.len());
        self.defects.extend_from_slice(defects);
        self.erasure_starts.push(self.erasures.len());
        self.erasures.extend_from_slice(erasures);
        self.total_defects += defects.len();
        self.round_cursor += 1;
    }

    fn finish(&mut self) -> DecodeOutcome {
        let started = Instant::now();
        let pool = Arc::clone(&self.pool);

        // Phase 1: decode all leaves concurrently (speculative carries).
        {
            let this: &FusionDecoder<'_> = self;
            pool.run(self.plan.leaves().len(), &|worker, leaf| {
                this.decode_leaf(worker, leaf)
            });
        }

        // Phase 2: fuse adjacent blocks up the balanced tree. Each level
        // merges disjoint pairs concurrently; an odd block out waits for the
        // next level.
        let mut blocks: Vec<Range<usize>> = self.plan.leaves().to_vec();
        while blocks.len() > 1 {
            let pairs = blocks.len() / 2;
            {
                let this: &FusionDecoder<'_> = self;
                let blocks = &blocks;
                pool.run(pairs, &|worker, m| {
                    this.merge(worker, &blocks[2 * m], &blocks[2 * m + 1])
                });
            }
            let mut next: Vec<Range<usize>> = (0..pairs)
                .map(|m| blocks[2 * m].start..blocks[2 * m + 1].end)
                .collect();
            if blocks.len() % 2 == 1 {
                next.push(blocks.last().expect("non-empty").clone());
            }
            blocks = next;
        }

        // Phase 3: fold the per-position partials in position order — the
        // same XOR/f64 chain the sequential path computes.
        let mut flip = false;
        let mut weight = 0.0f64;
        for rec in &self.records {
            let rec = rec.lock().unwrap();
            flip ^= rec.flip;
            weight += rec.weight;
        }
        debug_assert!(
            self.records
                .last()
                .is_none_or(|r| r.lock().unwrap().carry_out.is_empty()),
            "final window left defects"
        );

        let nanos = started.elapsed().as_nanos() as u64;
        let span = self.plan.window_plan().max_round() + 1;
        self.latencies.push((nanos, span as u32));
        DecodeOutcome {
            flip,
            weight,
            defects: self.total_defects,
            nanos,
        }
    }

    fn name(&self) -> &'static str {
        self.plan.window_plan().backend().name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn pool_runs_every_task_exactly_once() {
        let pool = FusionPool::new(4);
        assert_eq!(pool.workers(), 4);
        for tasks in [0usize, 1, 3, 4, 17, 64] {
            let hits: Vec<AtomicUsize> = (0..tasks).map(|_| AtomicUsize::new(0)).collect();
            pool.run(tasks, &|worker, task| {
                assert!(worker < 4);
                hits[task].fetch_add(1, Ordering::SeqCst);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "{tasks} tasks"
            );
        }
    }

    #[test]
    fn pool_reuses_across_many_generations() {
        let pool = FusionPool::new(3);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(5, &|_, _| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 1000);
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = FusionPool::new(1);
        let mut order = Vec::new();
        let cell = Mutex::new(&mut order);
        pool.run(4, &|worker, task| {
            assert_eq!(worker, 0);
            cell.lock().unwrap().push(task);
        });
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pool_propagates_task_panics() {
        let pool = FusionPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|_, task| {
                if task == 5 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        // And the pool still works afterwards.
        let count = AtomicUsize::new(0);
        pool.run(4, &|_, _| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 4);
    }
}
