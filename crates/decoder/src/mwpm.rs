//! Minimum-Weight Perfect Matching decoder.
//!
//! The paper's gold-standard decoder (§2.2): fired detectors (defects) are
//! paired up — or matched to the lattice boundary — along minimum-weight
//! paths of the decoding graph, and the correction's effect on the logical
//! observable is the XOR of the observable parities of those paths.
//!
//! Implementation: all-pairs shortest paths (Dijkstra per node, tracking
//! observable parity along the shortest path), then exact blossom matching on
//! the defect graph with one virtual boundary copy per defect (the standard
//! reduction that lets an odd number of defects terminate on the boundary).

use crate::graph::DecodingGraph;
use crate::matching::max_weight_matching;
use crate::Decoder;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Resolution used when converting f64 path lengths to the integer weights
/// the blossom algorithm requires.
const WEIGHT_SCALE: f64 = 1e4;

/// All-pairs shortest paths over a decoding graph (boundary node included),
/// with observable parity tracked along each shortest path.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    n: usize,
    dist: Vec<f64>,
    obs: Vec<bool>,
}

impl ShortestPaths {
    /// Runs Dijkstra from every node. Memory is O((nodes+1)²); decoding
    /// graphs beyond ~10⁴ nodes should use the union-find decoder instead.
    pub fn compute(graph: &DecodingGraph) -> ShortestPaths {
        let n = graph.num_nodes() + 1;
        let mut dist = vec![f64::INFINITY; n * n];
        let mut obs = vec![false; n * n];
        for src in 0..n {
            let (d, o) = dijkstra(graph, src);
            dist[src * n..(src + 1) * n].copy_from_slice(&d);
            obs[src * n..(src + 1) * n].copy_from_slice(&o);
        }
        ShortestPaths { n, dist, obs }
    }

    /// Shortest-path length between two nodes (boundary = `num_nodes`).
    pub fn distance(&self, u: usize, v: usize) -> f64 {
        self.dist[u * self.n + v]
    }

    /// Observable parity along the shortest path between two nodes.
    pub fn observable_parity(&self, u: usize, v: usize) -> bool {
        self.obs[u * self.n + v]
    }

    /// Number of nodes including the boundary.
    pub fn num_nodes_with_boundary(&self) -> usize {
        self.n
    }
}

#[derive(PartialEq)]
struct HeapItem(f64, usize);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Weights are finite positive floats; total order is safe.
        self.0
            .partial_cmp(&other.0)
            .unwrap()
            .then(self.1.cmp(&other.1))
    }
}

fn dijkstra(graph: &DecodingGraph, src: usize) -> (Vec<f64>, Vec<bool>) {
    let n = graph.num_nodes() + 1;
    let mut dist = vec![f64::INFINITY; n];
    let mut obs = vec![false; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(Reverse(HeapItem(0.0, src)));
    while let Some(Reverse(HeapItem(d, u))) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for &ei in graph.incident(u) {
            let e = &graph.edges()[ei];
            let v = if e.a == u { e.b } else { e.a };
            let nd = d + e.weight;
            if nd < dist[v] {
                dist[v] = nd;
                obs[v] = obs[u] ^ e.flips_observable;
                heap.push(Reverse(HeapItem(nd, v)));
            }
        }
    }
    (dist, obs)
}

/// The MWPM decoder (see module docs).
///
/// # Example
///
/// ```
/// use qec_core::NoiseParams;
/// use qec_core::circuit::DetectorBasis;
/// use qec_decoder::{build_dem, Decoder, DecodingGraph, MwpmDecoder};
/// use surface_code::{MemoryExperiment, RotatedCode};
///
/// let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
/// let detectors = exp.detectors();
/// let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
/// let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
/// let decoder = MwpmDecoder::new(&graph);
/// assert!(!decoder.decode(&[]));
/// ```
#[derive(Debug)]
pub struct MwpmDecoder<'g> {
    graph: &'g DecodingGraph,
    paths: ShortestPaths,
}

impl<'g> MwpmDecoder<'g> {
    /// Builds the decoder (precomputes all-pairs shortest paths).
    pub fn new(graph: &'g DecodingGraph) -> MwpmDecoder<'g> {
        MwpmDecoder {
            graph,
            paths: ShortestPaths::compute(graph),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        self.graph
    }

    /// The precomputed shortest paths (shared with analyses/benchmarks).
    pub fn paths(&self) -> &ShortestPaths {
        &self.paths
    }

    /// Pairs up defects; returns `(matched defect pairs, boundary-matched
    /// defects)` as indices into `defects`.
    pub fn match_defects(&self, defects: &[usize]) -> (Vec<(usize, usize)>, Vec<usize>) {
        let k = defects.len();
        if k == 0 {
            return (Vec::new(), Vec::new());
        }
        let boundary = self.graph.boundary();
        // Vertices 0..k are defects, k..2k their private boundary copies.
        let mut edges: Vec<(usize, usize, i64)> = Vec::with_capacity(k * k + k);
        let mut max_scaled: i64 = 0;
        let mut scaled = vec![0i64; k * k];
        let mut scaled_boundary = vec![0i64; k];
        for i in 0..k {
            for j in (i + 1)..k {
                let d = self.paths.distance(defects[i], defects[j]);
                let s = (d * WEIGHT_SCALE).round() as i64;
                scaled[i * k + j] = s;
                max_scaled = max_scaled.max(s);
            }
            let d = self.paths.distance(defects[i], boundary);
            let s = (d * WEIGHT_SCALE).round() as i64;
            scaled_boundary[i] = s;
            max_scaled = max_scaled.max(s);
        }
        let c = max_scaled + 1;
        for i in 0..k {
            for j in (i + 1)..k {
                edges.push((i, j, c - scaled[i * k + j]));
                // Boundary copies pair freely among themselves.
                edges.push((k + i, k + j, c));
            }
            edges.push((i, k + i, c - scaled_boundary[i]));
        }
        let mate = max_weight_matching(&edges, true);
        let mut pairs = Vec::new();
        let mut to_boundary = Vec::new();
        for (i, &partner) in mate.iter().enumerate().take(k) {
            match partner {
                Some(j) if j < k => {
                    if i < j {
                        pairs.push((i, j));
                    }
                }
                Some(_) => to_boundary.push(i),
                None => unreachable!("perfect matching guaranteed"),
            }
        }
        (pairs, to_boundary)
    }
}

impl Decoder for MwpmDecoder<'_> {
    fn decode(&self, defects: &[usize]) -> bool {
        let (pairs, to_boundary) = self.match_defects(defects);
        let boundary = self.graph.boundary();
        let mut flip = false;
        for (i, j) in pairs {
            flip ^= self.paths.observable_parity(defects[i], defects[j]);
        }
        for i in to_boundary {
            flip ^= self.paths.observable_parity(defects[i], boundary);
        }
        flip
    }

    fn name(&self) -> &'static str {
        "mwpm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use qec_core::circuit::DetectorBasis;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    fn setup(d: usize, rounds: usize) -> (DecodingGraph, crate::DetectorErrorModel) {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        (graph, dem)
    }

    #[test]
    fn empty_syndrome_decodes_trivially() {
        let (graph, _) = setup(3, 2);
        let decoder = MwpmDecoder::new(&graph);
        assert!(!decoder.decode(&[]));
    }

    #[test]
    fn shortest_paths_are_symmetric() {
        let (graph, _) = setup(3, 3);
        let paths = ShortestPaths::compute(&graph);
        let n = graph.num_nodes();
        for u in (0..n).step_by(3) {
            for v in (0..n).step_by(5) {
                assert!((paths.distance(u, v) - paths.distance(v, u)).abs() < 1e-9);
                assert_eq!(paths.observable_parity(u, v), paths.observable_parity(v, u));
            }
        }
    }

    #[test]
    fn every_node_reaches_boundary() {
        let (graph, _) = setup(5, 3);
        let paths = ShortestPaths::compute(&graph);
        let b = graph.boundary();
        for u in 0..graph.num_nodes() {
            assert!(paths.distance(u, b).is_finite(), "node {u} cut off");
        }
    }

    /// Every single fault mechanism must be corrected without a logical
    /// error: decoding its own defect signature must predict exactly its
    /// observable flip. This is the statement that the decoder preserves the
    /// code distance.
    #[test]
    fn single_faults_are_always_corrected() {
        for (d, rounds) in [(3usize, 3usize), (5, 4)] {
            let (graph, dem) = setup(d, rounds);
            let decoder = MwpmDecoder::new(&graph);
            let exp =
                MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
            let detectors = exp.detectors();
            let mut checked = 0;
            for mech in &dem.mechanisms {
                let defects: Vec<usize> = mech
                    .detectors
                    .iter()
                    .filter_map(|&det| graph.node_of_detector(det))
                    .collect();
                // Only mechanisms whose Z-projection is elementary are direct
                // graph edges; all single faults in a distance-d code satisfy
                // this (hyperedges decompose).
                if defects.is_empty() {
                    assert!(
                        !mech.flips_observable,
                        "undetectable logical flip at d={d}: {mech:?}"
                    );
                    continue;
                }
                let predicted = decoder.decode(&defects);
                assert_eq!(
                    predicted,
                    mech.flips_observable,
                    "single fault mis-corrected at d={d}: {mech:?} (dets {:?})",
                    mech.detectors
                        .iter()
                        .map(|&i| (&detectors[i].basis, detectors[i].round))
                        .collect::<Vec<_>>()
                );
                checked += 1;
            }
            assert!(checked > 50, "too few mechanisms checked ({checked})");
        }
    }

    #[test]
    fn matched_pairs_partition_defects() {
        let (graph, dem) = setup(3, 3);
        let decoder = MwpmDecoder::new(&graph);
        // Combine a few mechanisms into a composite syndrome.
        let mut events = vec![false; graph.num_nodes()];
        for mech in dem.mechanisms.iter().take(6) {
            for &det in &mech.detectors {
                if let Some(n) = graph.node_of_detector(det) {
                    events[n] ^= true;
                }
            }
        }
        let defects: Vec<usize> = (0..graph.num_nodes()).filter(|&n| events[n]).collect();
        let (pairs, to_boundary) = decoder.match_defects(&defects);
        let mut seen = vec![false; defects.len()];
        for (i, j) in &pairs {
            assert!(!seen[*i] && !seen[*j]);
            seen[*i] = true;
            seen[*j] = true;
        }
        for i in &to_boundary {
            assert!(!seen[*i]);
            seen[*i] = true;
        }
        assert!(seen.iter().all(|&s| s), "defect left unmatched");
    }
}
