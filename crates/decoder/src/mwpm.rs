//! Minimum-Weight Perfect Matching decoder.
//!
//! The paper's gold-standard decoder (§2.2): fired detectors (defects) are
//! paired up — or matched to the lattice boundary — along minimum-weight
//! paths of the decoding graph, and the correction's effect on the logical
//! observable is the XOR of the observable parities of those paths.
//!
//! Implementation: all-pairs shortest paths (Dijkstra per node, tracking
//! observable parity along the shortest path), then exact blossom matching on
//! the defect graph with one virtual boundary copy per defect (the standard
//! reduction that lets an odd number of defects terminate on the boundary).
//!
//! The stateful entry point is [`MwpmFactory`] → [`MwpmBatchDecoder`]: the
//! O(n²) [`ShortestPaths`] table is computed once per graph and shared across
//! worker threads via [`Arc`]; each instance keeps its own matching scratch
//! so the per-shot loop does not allocate.

use crate::api::{DecodeOutcome, DecoderFactory, Syndrome, SyndromeDecoder};
use crate::graph::DecodingGraph;
use crate::matching::MatchingContext;
use crate::overlay::{DijkstraScratch, WeightOverlay};
use crate::weight::scale_weight;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// All-pairs shortest paths over a decoding graph (boundary node included),
/// with observable parity tracked along each shortest path.
#[derive(Debug, Clone)]
pub struct ShortestPaths {
    n: usize,
    dist: Vec<f64>,
    obs: Vec<bool>,
}

impl ShortestPaths {
    /// Runs Dijkstra from every node. Memory is O((nodes+1)²); decoding
    /// graphs beyond ~10⁴ nodes should use the union-find decoder instead.
    pub fn compute(graph: &DecodingGraph) -> ShortestPaths {
        let n = graph.num_nodes() + 1;
        let mut dist = vec![f64::INFINITY; n * n];
        let mut obs = vec![false; n * n];
        for src in 0..n {
            let (d, o) = dijkstra(graph, src);
            dist[src * n..(src + 1) * n].copy_from_slice(&d);
            obs[src * n..(src + 1) * n].copy_from_slice(&o);
        }
        ShortestPaths { n, dist, obs }
    }

    /// Approximate heap footprint, for size-bounded artifact caches.
    pub fn approx_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<f64>() + self.obs.len()
    }

    /// Shortest-path length between two nodes (boundary = `num_nodes`).
    pub fn distance(&self, u: usize, v: usize) -> f64 {
        self.dist[u * self.n + v]
    }

    /// Observable parity along the shortest path between two nodes.
    pub fn observable_parity(&self, u: usize, v: usize) -> bool {
        self.obs[u * self.n + v]
    }

    /// Number of nodes including the boundary.
    pub fn num_nodes_with_boundary(&self) -> usize {
        self.n
    }

    /// Reconstructs a shortest path from `u` to `v` as edge indices, appended
    /// to `out`.
    ///
    /// The walk follows the relaxation equalities of the Dijkstra run rooted
    /// at `v`: each step moves to a neighbor that preserves both the exact
    /// stored distance *and* the stored observable parity. The parity
    /// condition telescopes, so the XOR of the emitted edges' observable
    /// flips equals [`ShortestPaths::observable_parity`]`(u, v)` exactly —
    /// degenerate equal-weight paths of opposite parity can never be picked.
    /// This is what lets the sliding-window committer work edge by edge while
    /// staying bit-identical to whole-path matching.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable from `u`.
    pub fn path_edges(&self, graph: &DecodingGraph, u: usize, v: usize, out: &mut Vec<usize>) {
        assert!(
            self.distance(v, u).is_finite(),
            "node {u} cannot reach node {v}"
        );
        let mut cur = u;
        // A shortest path visits each edge at most once.
        let mut guard = graph.edges().len() + 1;
        while cur != v {
            let d_cur = self.distance(v, cur);
            let o_cur = self.observable_parity(v, cur);
            let mut next: Option<(usize, usize)> = None;
            // Exact pass: the final relaxation that produced `dist[cur]`
            // guarantees a neighbor with bit-exact distance and parity.
            for &ei in graph.incident(cur) {
                let e = &graph.edges()[ei];
                let w = if e.a == cur { e.b } else { e.a };
                if self.distance(v, w) + e.weight == d_cur
                    && (self.observable_parity(v, w) ^ e.flips_observable) == o_cur
                {
                    next = Some((ei, w));
                    break;
                }
            }
            // Paranoia fallback (never taken for tables produced by
            // `ShortestPaths::compute`): epsilon comparison, parity first.
            if next.is_none() {
                for &ei in graph.incident(cur) {
                    let e = &graph.edges()[ei];
                    let w = if e.a == cur { e.b } else { e.a };
                    if (self.distance(v, w) + e.weight - d_cur).abs() < 1e-9
                        && (self.observable_parity(v, w) ^ e.flips_observable) == o_cur
                    {
                        next = Some((ei, w));
                        break;
                    }
                }
            }
            let (ei, w) = next.expect("shortest-path walk found no consistent step");
            out.push(ei);
            cur = w;
            guard -= 1;
            assert!(guard > 0, "shortest-path walk failed to terminate");
        }
    }
}

#[derive(PartialEq)]
struct HeapItem(f64, usize);

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `total_cmp`, not `partial_cmp().unwrap()`: graph construction
        // validates weights, but a degenerate distance must surface as a
        // wrong answer caught by tests — never as a panic inside BinaryHeap.
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

fn dijkstra(graph: &DecodingGraph, src: usize) -> (Vec<f64>, Vec<bool>) {
    let n = graph.num_nodes() + 1;
    let mut dist = vec![f64::INFINITY; n];
    let mut obs = vec![false; n];
    let mut done = vec![false; n];
    let mut heap = BinaryHeap::new();
    dist[src] = 0.0;
    heap.push(Reverse(HeapItem(0.0, src)));
    while let Some(Reverse(HeapItem(d, u))) = heap.pop() {
        if done[u] {
            continue;
        }
        done[u] = true;
        for &ei in graph.incident(u) {
            let e = &graph.edges()[ei];
            let v = if e.a == u { e.b } else { e.a };
            let nd = d + e.weight;
            if nd < dist[v] {
                dist[v] = nd;
                obs[v] = obs[u] ^ e.flips_observable;
                heap.push(Reverse(HeapItem(nd, v)));
            }
        }
    }
    (dist, obs)
}

/// Stateful MWPM decoder instance: one per worker thread, built through
/// [`MwpmFactory`]. Owns the blossom matching scratch and the defect-graph
/// staging buffers, all reused across shots.
#[derive(Debug)]
pub struct MwpmBatchDecoder<'g> {
    graph: &'g DecodingGraph,
    paths: Arc<ShortestPaths>,
    matching: MatchingContext,
    edges: Vec<(usize, usize, i64)>,
    scaled: Vec<i64>,
    scaled_boundary: Vec<i64>,
    pairs: Vec<(usize, usize)>,
    to_boundary: Vec<usize>,
    overlay: WeightOverlay,
    eff_dist: Vec<f64>,
    eff_par: Vec<bool>,
    dijkstra: DijkstraScratch,
}

impl<'g> MwpmBatchDecoder<'g> {
    /// Builds a standalone instance, computing the shortest-path table
    /// itself. For multi-threaded decoding use [`MwpmFactory`], which pays
    /// this cost once per graph.
    pub fn new(graph: &'g DecodingGraph) -> MwpmBatchDecoder<'g> {
        MwpmBatchDecoder::with_paths(graph, Arc::new(ShortestPaths::compute(graph)))
    }

    /// Builds an instance over a precomputed (shared) shortest-path table.
    ///
    /// # Panics
    ///
    /// Panics if `paths` was computed for a different-sized graph.
    pub fn with_paths(graph: &'g DecodingGraph, paths: Arc<ShortestPaths>) -> MwpmBatchDecoder<'g> {
        assert_eq!(
            paths.num_nodes_with_boundary(),
            graph.num_nodes() + 1,
            "shortest-path table does not match the decoding graph"
        );
        MwpmBatchDecoder {
            graph,
            paths,
            matching: MatchingContext::new(),
            edges: Vec::new(),
            scaled: Vec::new(),
            scaled_boundary: Vec::new(),
            pairs: Vec::new(),
            to_boundary: Vec::new(),
            overlay: WeightOverlay::new(),
            eff_dist: Vec::new(),
            eff_par: Vec::new(),
            dijkstra: DijkstraScratch::new(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        self.graph
    }

    /// The shared shortest-path table.
    pub fn paths(&self) -> &Arc<ShortestPaths> {
        &self.paths
    }

    /// Pairs up defects into `self.pairs` (matched defect pairs) and
    /// `self.to_boundary` (boundary-matched defects), as indices into
    /// `defects`. All staging buffers are reused.
    fn match_defects_into(&mut self, defects: &[usize]) {
        self.pairs.clear();
        self.to_boundary.clear();
        let k = defects.len();
        if k == 0 {
            return;
        }
        let boundary = self.graph.boundary();
        self.scaled.clear();
        self.scaled.resize(k * k, 0);
        self.scaled_boundary.clear();
        self.scaled_boundary.resize(k, 0);
        for i in 0..k {
            for j in (i + 1)..k {
                let d = self.paths.distance(defects[i], defects[j]);
                self.scaled[i * k + j] = scale_weight(d);
            }
            let d = self.paths.distance(defects[i], boundary);
            self.scaled_boundary[i] = scale_weight(d);
        }
        self.solve_staged(k);
    }

    /// Like [`MwpmBatchDecoder::match_defects_into`], but over the overlaid
    /// metric previously staged into `self.eff_dist` (erasure decoding).
    fn match_defects_from_matrix(&mut self, k: usize) {
        self.pairs.clear();
        self.to_boundary.clear();
        if k == 0 {
            return;
        }
        let t = k + 1;
        self.scaled.clear();
        self.scaled.resize(k * k, 0);
        self.scaled_boundary.clear();
        self.scaled_boundary.resize(k, 0);
        for i in 0..k {
            for j in (i + 1)..k {
                self.scaled[i * k + j] = scale_weight(self.eff_dist[i * t + j]);
            }
            self.scaled_boundary[i] = scale_weight(self.eff_dist[i * t + k]);
        }
        self.solve_staged(k);
    }

    /// Runs blossom matching over the staged `scaled`/`scaled_boundary`
    /// integer weights. Vertices 0..k are defects, k..2k their private
    /// boundary copies (the standard odd-parity reduction).
    fn solve_staged(&mut self, k: usize) {
        let mut max_scaled: i64 = 0;
        for i in 0..k {
            for j in (i + 1)..k {
                max_scaled = max_scaled.max(self.scaled[i * k + j]);
            }
            max_scaled = max_scaled.max(self.scaled_boundary[i]);
        }
        let c = max_scaled + 1;
        self.edges.clear();
        for i in 0..k {
            for j in (i + 1)..k {
                self.edges.push((i, j, c - self.scaled[i * k + j]));
                // Boundary copies pair freely among themselves.
                self.edges.push((k + i, k + j, c));
            }
            self.edges.push((i, k + i, c - self.scaled_boundary[i]));
        }
        let mate = self.matching.solve(&self.edges, true);
        for (i, &partner) in mate.iter().enumerate().take(k) {
            match partner {
                Some(j) if j < k => {
                    if i < j {
                        self.pairs.push((i, j));
                    }
                }
                Some(_) => self.to_boundary.push(i),
                None => unreachable!("perfect matching guaranteed"),
            }
        }
    }
}

impl MwpmBatchDecoder<'_> {
    /// Shared decode core. With `correction`, the matched paths are also
    /// emitted as edge indices; the returned flip is then computed from those
    /// edges, which is bit-identical to the pairwise parity on the
    /// erasure-free path (the walk is parity-consistent, see
    /// [`ShortestPaths::path_edges`]) and self-consistent under erasures.
    fn decode_inner(
        &mut self,
        syndrome: &Syndrome,
        mut correction: Option<&mut Vec<usize>>,
    ) -> DecodeOutcome {
        if let Some(c) = correction.as_deref_mut() {
            c.clear();
        }
        let defects = &syndrome.defects;
        if defects.is_empty() {
            // Trivial shot: skip even the clock reads (the common case at
            // low physical error rates).
            return DecodeOutcome::default();
        }
        let start = Instant::now();
        let boundary = self.graph.boundary();
        let mut flip = false;
        let mut weight = 0.0;
        if syndrome.erasures.is_empty() {
            self.match_defects_into(defects);
            for &(i, j) in &self.pairs {
                flip ^= self.paths.observable_parity(defects[i], defects[j]);
                weight += self.paths.distance(defects[i], defects[j]);
                if let Some(c) = correction.as_deref_mut() {
                    self.paths.path_edges(self.graph, defects[i], defects[j], c);
                }
            }
            for &i in &self.to_boundary {
                flip ^= self.paths.observable_parity(defects[i], boundary);
                weight += self.paths.distance(defects[i], boundary);
                if let Some(c) = correction.as_deref_mut() {
                    self.paths.path_edges(self.graph, defects[i], boundary, c);
                }
            }
        } else {
            // Erasure decoding: overlay the flagged edges (weight ~0), match
            // over the reweighted metric, then restore.
            self.overlay.apply(self.graph, &syndrome.erasures);
            self.overlay.effective_metrics(
                &self.paths,
                defects,
                boundary,
                &mut self.eff_dist,
                &mut self.eff_par,
            );
            let k = defects.len();
            self.match_defects_from_matrix(k);
            let t = k + 1;
            for &(i, j) in &self.pairs {
                weight += self.eff_dist[i * t + j];
                flip ^= if let Some(c) = correction.as_deref_mut() {
                    self.dijkstra.effective_path_edges(
                        self.graph,
                        &self.overlay,
                        defects[i],
                        defects[j],
                        c,
                    )
                } else {
                    self.eff_par[i * t + j]
                };
            }
            for &i in &self.to_boundary {
                weight += self.eff_dist[i * t + k];
                flip ^= if let Some(c) = correction.as_deref_mut() {
                    self.dijkstra.effective_path_edges(
                        self.graph,
                        &self.overlay,
                        defects[i],
                        boundary,
                        c,
                    )
                } else {
                    self.eff_par[i * t + k]
                };
            }
            self.overlay.restore();
        }
        DecodeOutcome {
            flip,
            weight,
            defects: defects.len(),
            nanos: start.elapsed().as_nanos() as u64,
        }
    }
}

impl SyndromeDecoder for MwpmBatchDecoder<'_> {
    fn decode_syndrome(&mut self, syndrome: &Syndrome) -> DecodeOutcome {
        self.decode_inner(syndrome, None)
    }

    fn decode_with_correction(
        &mut self,
        syndrome: &Syndrome,
        correction: &mut Vec<usize>,
    ) -> DecodeOutcome {
        self.decode_inner(syndrome, Some(correction))
    }

    /// Closed form for 1–2 erasure-free defects. One defect always matches
    /// to the boundary (the blossom's only perfect matching); two defects
    /// pair up or both go to the boundary by the same *scaled* integer
    /// comparison `MwpmBatchDecoder::match_defects_into` stages, so the
    /// decision is bit-identical. On a scaled tie the optimal matching is
    /// not unique and the blossom's tie-break must stand: defer (`None`).
    fn decode_tier1(
        &mut self,
        syndrome: &Syndrome,
        mut correction: Option<&mut Vec<usize>>,
    ) -> Option<DecodeOutcome> {
        let defects = &syndrome.defects;
        let k = defects.len();
        if !(1..=2).contains(&k) || !syndrome.erasures.is_empty() {
            return None;
        }
        let boundary = self.graph.boundary();
        // Decide before touching the correction so a deferral leaves the
        // caller's state exactly as the full path expects it.
        let pair = if k == 2 {
            let s01 = scale_weight(self.paths.distance(defects[0], defects[1]));
            let sb = scale_weight(self.paths.distance(defects[0], boundary))
                + scale_weight(self.paths.distance(defects[1], boundary));
            if s01 == sb {
                return None;
            }
            s01 < sb
        } else {
            false
        };
        if let Some(c) = correction.as_deref_mut() {
            c.clear();
        }
        let start = Instant::now();
        let mut flip = false;
        let mut weight = 0.0;
        if pair {
            flip ^= self.paths.observable_parity(defects[0], defects[1]);
            weight += self.paths.distance(defects[0], defects[1]);
            if let Some(c) = correction.as_deref_mut() {
                self.paths.path_edges(self.graph, defects[0], defects[1], c);
            }
        } else {
            for &u in defects {
                flip ^= self.paths.observable_parity(u, boundary);
                weight += self.paths.distance(u, boundary);
                if let Some(c) = correction.as_deref_mut() {
                    self.paths.path_edges(self.graph, u, boundary, c);
                }
            }
        }
        Some(DecodeOutcome {
            flip,
            weight,
            defects: k,
            nanos: start.elapsed().as_nanos() as u64,
        })
    }

    fn name(&self) -> &'static str {
        "mwpm"
    }
}

/// Factory for [`MwpmBatchDecoder`]s: computes the all-pairs shortest-path
/// table once and shares it (via [`Arc`]) with every instance it builds.
///
/// # Example
///
/// ```
/// use qec_core::NoiseParams;
/// use qec_core::circuit::DetectorBasis;
/// use qec_decoder::{build_dem, DecoderFactory, DecodingGraph, MwpmFactory, Syndrome};
/// use surface_code::{MemoryExperiment, RotatedCode};
///
/// let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
/// let detectors = exp.detectors();
/// let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
/// let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
/// let factory = MwpmFactory::new(&graph);
/// let mut decoder = factory.build();
/// assert!(!decoder.decode_syndrome(&Syndrome::default()).flip);
/// ```
#[derive(Debug)]
pub struct MwpmFactory<'g> {
    graph: &'g DecodingGraph,
    paths: Arc<ShortestPaths>,
}

impl<'g> MwpmFactory<'g> {
    /// Computes the shortest-path table for `graph` (the expensive step, paid
    /// once).
    pub fn new(graph: &'g DecodingGraph) -> MwpmFactory<'g> {
        MwpmFactory {
            graph,
            paths: Arc::new(ShortestPaths::compute(graph)),
        }
    }

    /// Reuses an existing shortest-path table (e.g. shared with a
    /// [`crate::GreedyFactory`] on the same graph).
    pub fn with_paths(graph: &'g DecodingGraph, paths: Arc<ShortestPaths>) -> MwpmFactory<'g> {
        MwpmFactory { graph, paths }
    }

    /// The shared shortest-path table.
    pub fn paths(&self) -> &Arc<ShortestPaths> {
        &self.paths
    }
}

impl DecoderFactory for MwpmFactory<'_> {
    fn build(&self) -> Box<dyn SyndromeDecoder + '_> {
        Box::new(MwpmBatchDecoder::with_paths(
            self.graph,
            Arc::clone(&self.paths),
        ))
    }

    fn name(&self) -> &'static str {
        "mwpm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use qec_core::circuit::DetectorBasis;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    fn setup(d: usize, rounds: usize) -> (DecodingGraph, crate::DetectorErrorModel) {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        (graph, dem)
    }

    #[test]
    fn empty_syndrome_decodes_trivially() {
        let (graph, _) = setup(3, 2);
        let factory = MwpmFactory::new(&graph);
        let mut decoder = factory.build();
        let outcome = decoder.decode_syndrome(&Syndrome::default());
        assert!(!outcome.flip);
        assert_eq!(outcome.weight, 0.0);
        assert_eq!(outcome.defects, 0);
    }

    #[test]
    fn factory_shares_one_paths_table() {
        let (graph, _) = setup(3, 2);
        let factory = MwpmFactory::new(&graph);
        let a = MwpmBatchDecoder::with_paths(&graph, Arc::clone(factory.paths()));
        let b = MwpmBatchDecoder::with_paths(&graph, Arc::clone(factory.paths()));
        assert!(Arc::ptr_eq(a.paths(), b.paths()));
    }

    #[test]
    fn shortest_paths_are_symmetric() {
        let (graph, _) = setup(3, 3);
        let paths = ShortestPaths::compute(&graph);
        let n = graph.num_nodes();
        for u in (0..n).step_by(3) {
            for v in (0..n).step_by(5) {
                assert!((paths.distance(u, v) - paths.distance(v, u)).abs() < 1e-9);
                assert_eq!(paths.observable_parity(u, v), paths.observable_parity(v, u));
            }
        }
    }

    #[test]
    fn every_node_reaches_boundary() {
        let (graph, _) = setup(5, 3);
        let paths = ShortestPaths::compute(&graph);
        let b = graph.boundary();
        for u in 0..graph.num_nodes() {
            assert!(paths.distance(u, b).is_finite(), "node {u} cut off");
        }
    }

    /// Every single fault mechanism must be corrected without a logical
    /// error: decoding its own defect signature must predict exactly its
    /// observable flip. This is the statement that the decoder preserves the
    /// code distance.
    #[test]
    fn single_faults_are_always_corrected() {
        for (d, rounds) in [(3usize, 3usize), (5, 4)] {
            let (graph, dem) = setup(d, rounds);
            let mut decoder = MwpmBatchDecoder::new(&graph);
            let exp =
                MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
            let detectors = exp.detectors();
            let mut checked = 0;
            let mut syndrome = Syndrome::default();
            for mech in &dem.mechanisms {
                syndrome.clear();
                syndrome.defects.extend(
                    mech.detectors
                        .iter()
                        .filter_map(|&det| graph.node_of_detector(det)),
                );
                // Only mechanisms whose Z-projection is elementary are direct
                // graph edges; all single faults in a distance-d code satisfy
                // this (hyperedges decompose).
                if syndrome.is_empty() {
                    assert!(
                        !mech.flips_observable,
                        "undetectable logical flip at d={d}: {mech:?}"
                    );
                    continue;
                }
                let predicted = decoder.decode_syndrome(&syndrome).flip;
                assert_eq!(
                    predicted,
                    mech.flips_observable,
                    "single fault mis-corrected at d={d}: {mech:?} (dets {:?})",
                    mech.detectors
                        .iter()
                        .map(|&i| (&detectors[i].basis, detectors[i].round))
                        .collect::<Vec<_>>()
                );
                checked += 1;
            }
            assert!(checked > 50, "too few mechanisms checked ({checked})");
        }
    }

    #[test]
    fn matched_pairs_partition_defects() {
        let (graph, dem) = setup(3, 3);
        let mut decoder = MwpmBatchDecoder::new(&graph);
        // Combine a few mechanisms into a composite syndrome.
        let mut events = vec![false; graph.num_nodes()];
        for mech in dem.mechanisms.iter().take(6) {
            for &det in &mech.detectors {
                if let Some(n) = graph.node_of_detector(det) {
                    events[n] ^= true;
                }
            }
        }
        let defects: Vec<usize> = (0..graph.num_nodes()).filter(|&n| events[n]).collect();
        decoder.match_defects_into(&defects);
        let (pairs, to_boundary) = (decoder.pairs.clone(), decoder.to_boundary.clone());
        let mut seen = vec![false; defects.len()];
        for (i, j) in &pairs {
            assert!(!seen[*i] && !seen[*j]);
            seen[*i] = true;
            seen[*j] = true;
        }
        for i in &to_boundary {
            assert!(!seen[*i]);
            seen[*i] = true;
        }
        assert!(seen.iter().all(|&s| s), "defect left unmatched");
    }

    #[test]
    fn outcome_weight_tracks_matched_paths() {
        let (graph, dem) = setup(3, 3);
        let mut decoder = MwpmBatchDecoder::new(&graph);
        // Any non-empty syndrome must be corrected with positive weight.
        let mech = dem
            .mechanisms
            .iter()
            .find(|m| {
                m.detectors
                    .iter()
                    .any(|&d| graph.node_of_detector(d).is_some())
            })
            .expect("some Z-visible mechanism");
        let defects: Vec<usize> = mech
            .detectors
            .iter()
            .filter_map(|&det| graph.node_of_detector(det))
            .collect();
        let outcome = decoder.decode_syndrome(&Syndrome::new(defects.clone()));
        assert_eq!(outcome.defects, defects.len());
        assert!(outcome.weight > 0.0);
    }
}
