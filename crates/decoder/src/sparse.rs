//! Sparse (APSP-free) Minimum-Weight Perfect Matching decoder.
//!
//! The dense decoder ([`crate::mwpm`]) precomputes an all-pairs
//! shortest-path table — O((nodes+1)²) memory and O(V·E·log V) build time —
//! which is exactly the scaling the sliding-window machinery exists to work
//! around, and which makes MWPM-accuracy decoding impractical at d ≥ 11.
//! This module reaches the *same optimal matching weight* with O(V)
//! precomputation, in the spirit of PyMatching v2 / fusion-blossom's sparse
//! blossom: all work happens directly on the decoding graph.
//!
//! The algorithm ("local matching", exact):
//!
//! 1. **Index** ([`SparseIndex`], shared per graph): one integer Dijkstra
//!    from the boundary gives every node's boundary distance `d_B`,
//!    observable parity, and predecessor edge; every edge weight is scaled
//!    to the shared integer grid ([`crate::weight`]).
//! 2. **Candidate discovery** (per shot): from each defect `u`, a *bounded*
//!    Dijkstra explores only nodes `w` with `d(u,w) < d_B(u) + d_B(w)` and
//!    `d(u,w) ≤ 2·d_B(u)`. Any defect pair with `d(u,v) < d_B(u) + d_B(v)`
//!    is discovered (from the endpoint with the larger `d_B`); pairs at or
//!    beyond that threshold are *dominated* — replacing the pair by two
//!    boundary matches never costs more — so skipping them is lossless.
//!    The pruning also never inflates a candidate's distance: every vertex
//!    `x` on a shortest `u–v` path of a needed pair satisfies
//!    `d(u,x) < d_B(u) + d_B(x)` (triangle inequality through `d_B`), so
//!    the whole path survives exploration.
//! 3. **Component decomposition**: union-find over candidate pairs splits
//!    the defects into independent clusters — no optimal matching pairs
//!    across clusters (any cross pair is non-candidate, hence dominated).
//! 4. **Exact blossom per component**: size-1 components match to the
//!    boundary, size-2 take their candidate pair (it beats two boundary
//!    matches by the candidate inequality), larger ones run the standard
//!    reduction (defects 0..m, private boundary copies m..2m) through the
//!    exact [`MatchingContext`] solver — identical to the dense path, but
//!    on a component of typically 2–4 defects instead of the whole shot.
//!
//! Because both backends optimize the same snapped integer metric, the
//! total correction weight is *equal* to the dense decoder's on every
//! syndrome — an exact integer equality, asserted by the equivalence suite.
//! (Equal-weight corrections along homologically distinct paths can in
//! principle differ in flip between backends; the fixed-seed suites assert
//! they do not on realistic graphs.)
//!
//! Erasures: flagged edges cost 0 in the traversal metric, which reproduces
//! the dense hub-contraction metric ([`WeightOverlay::effective_metrics`]
//! treats intra-component travel as free) exactly; the boundary index is
//! recomputed per erasure shot since the shared one is erasure-blind.
//!
//! All per-shot state is epoch-stamped and reused: the steady-state
//! [`SyndromeDecoder::decode_batch`] loop performs no heap allocation.

use crate::api::{DecodeOutcome, DecoderFactory, Syndrome, SyndromeDecoder};
use crate::graph::DecodingGraph;
use crate::matching::MatchingContext;
use crate::overlay::WeightOverlay;
use crate::weight::{scale_weight, WEIGHT_SCALE};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::time::Instant;

/// Shared per-graph precomputation for the sparse decoder: scaled integer
/// edge weights plus one boundary-rooted Dijkstra (distance, observable
/// parity, and predecessor edge per node). O(V + E) memory — the sparse
/// analogue of the dense [`crate::ShortestPaths`] table.
#[derive(Debug)]
pub struct SparseIndex {
    /// Nodes including the boundary (= `graph.num_nodes() + 1`).
    n: usize,
    /// Per-edge scaled integer weight.
    scaled: Vec<i64>,
    /// Per-node scaled distance to the boundary.
    d_b: Vec<i64>,
    /// Observable parity along the shortest path to the boundary.
    par_b: Vec<bool>,
    /// Predecessor edge toward the boundary (`u32::MAX` at the boundary).
    pred_b: Vec<u32>,
}

impl SparseIndex {
    /// Builds the index: one integer Dijkstra from the boundary.
    ///
    /// Nodes cut off from the boundary keep distance [`i64::MAX`]. That is
    /// legal at construction time — a noiseless run produces an edgeless
    /// graph — and only becomes an error if a *defect* lands on such a
    /// node, which the decoder checks per shot.
    pub fn compute(graph: &DecodingGraph) -> SparseIndex {
        let n = graph.num_nodes() + 1;
        let boundary = graph.boundary();
        let scaled: Vec<i64> = graph
            .edges()
            .iter()
            .map(|e| scale_weight(e.weight))
            .collect();
        let mut d_b = vec![i64::MAX; n];
        let mut par_b = vec![false; n];
        let mut pred_b = vec![u32::MAX; n];
        let mut done = vec![false; n];
        let mut heap: BinaryHeap<Reverse<(i64, usize)>> = BinaryHeap::new();
        d_b[boundary] = 0;
        heap.push(Reverse((0, boundary)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if done[u] {
                continue;
            }
            done[u] = true;
            for &ei in graph.incident(u) {
                let e = &graph.edges()[ei];
                let v = if e.a == u { e.b } else { e.a };
                let nd = d + scaled[ei];
                if nd < d_b[v] {
                    d_b[v] = nd;
                    par_b[v] = par_b[u] ^ e.flips_observable;
                    pred_b[v] = ei as u32;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        SparseIndex {
            n,
            scaled,
            d_b,
            par_b,
            pred_b,
        }
    }

    /// Approximate heap footprint, for size-bounded artifact caches.
    pub fn approx_bytes(&self) -> usize {
        self.scaled.len() * std::mem::size_of::<i64>()
            + self.d_b.len() * std::mem::size_of::<i64>()
            + self.par_b.len()
            + self.pred_b.len() * std::mem::size_of::<u32>()
    }

    /// Scaled integer distance from `v` to the boundary.
    pub fn boundary_distance(&self, v: usize) -> i64 {
        self.d_b[v]
    }

    /// Number of nodes including the boundary.
    pub fn num_nodes_with_boundary(&self) -> usize {
        self.n
    }
}

/// One discovered defect pair worth considering for matching: scaled
/// distance strictly below the sum of the endpoints' boundary distances.
#[derive(Debug, Clone, Copy)]
struct Candidate {
    /// Lower defect index (into the shot's defect list).
    i: u32,
    /// Higher defect index.
    j: u32,
    /// Exact scaled shortest-path distance between the defects.
    dist: i64,
    /// Observable parity along the discovered shortest path.
    par: bool,
    /// The defect index whose Dijkstra discovered (and can re-derive) the
    /// path — the deterministic source for correction emission.
    src: u32,
}

/// Stateful sparse-MWPM decoder instance: one per worker thread, built
/// through [`SparseMwpmFactory`]. All scratch is epoch-stamped and reused
/// across shots.
#[derive(Debug)]
pub struct SparseMwpmDecoder<'g> {
    graph: &'g DecodingGraph,
    index: Arc<SparseIndex>,
    overlay: WeightOverlay,
    matching: MatchingContext,
    // Epoch-stamped bounded-Dijkstra scratch (node-indexed).
    epoch: u32,
    stamp: Vec<u32>,
    dist: Vec<i64>,
    par: Vec<bool>,
    pred: Vec<u32>,
    settled: Vec<bool>,
    heap: BinaryHeap<Reverse<(i64, u32)>>,
    // Defect marking (separate epoch: must persist across Dijkstra runs).
    defect_epoch: u32,
    defect_stamp: Vec<u32>,
    defect_idx: Vec<u32>,
    // Erasure-effective boundary index, recomputed per erasure shot.
    eff_db: Vec<i64>,
    eff_parb: Vec<bool>,
    eff_predb: Vec<u32>,
    // Candidate pairs and component decomposition (defect-indexed).
    candidates: Vec<Candidate>,
    dsu: Vec<u32>,
    comp_id: Vec<u32>,
    comp_start: Vec<u32>,
    member_order: Vec<u32>,
    cursor: Vec<u32>,
    cand_start: Vec<u32>,
    cand_order: Vec<u32>,
    local_of: Vec<u32>,
    redux: Vec<(usize, usize, i64)>,
    // Matching decisions, accumulated across components.
    pair_out: Vec<(u32, u32)>,
    bnd_out: Vec<u32>,
}

impl<'g> SparseMwpmDecoder<'g> {
    /// Builds a standalone instance, computing the boundary index itself.
    /// For multi-threaded decoding use [`SparseMwpmFactory`], which pays the
    /// (already cheap) cost once per graph.
    pub fn new(graph: &'g DecodingGraph) -> SparseMwpmDecoder<'g> {
        SparseMwpmDecoder::with_index(graph, Arc::new(SparseIndex::compute(graph)))
    }

    /// Builds an instance over a precomputed (shared) index.
    ///
    /// # Panics
    ///
    /// Panics if `index` was computed for a different-sized graph.
    pub fn with_index(graph: &'g DecodingGraph, index: Arc<SparseIndex>) -> SparseMwpmDecoder<'g> {
        assert_eq!(
            index.num_nodes_with_boundary(),
            graph.num_nodes() + 1,
            "sparse index does not match the decoding graph"
        );
        SparseMwpmDecoder {
            graph,
            index,
            overlay: WeightOverlay::new(),
            matching: MatchingContext::new(),
            epoch: 0,
            stamp: Vec::new(),
            dist: Vec::new(),
            par: Vec::new(),
            pred: Vec::new(),
            settled: Vec::new(),
            heap: BinaryHeap::new(),
            defect_epoch: 0,
            defect_stamp: Vec::new(),
            defect_idx: Vec::new(),
            eff_db: Vec::new(),
            eff_parb: Vec::new(),
            eff_predb: Vec::new(),
            candidates: Vec::new(),
            dsu: Vec::new(),
            comp_id: Vec::new(),
            comp_start: Vec::new(),
            member_order: Vec::new(),
            cursor: Vec::new(),
            cand_start: Vec::new(),
            cand_order: Vec::new(),
            local_of: Vec::new(),
            redux: Vec::new(),
            pair_out: Vec::new(),
            bnd_out: Vec::new(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        self.graph
    }

    /// The shared index.
    pub fn index(&self) -> &Arc<SparseIndex> {
        &self.index
    }

    /// Boundary distance under the shot's metric.
    #[inline]
    fn db(&self, eff: bool, v: usize) -> i64 {
        if eff {
            self.eff_db[v]
        } else {
            self.index.d_b[v]
        }
    }

    /// Edge weight under the shot's metric: erased edges are free (0), which
    /// reproduces the dense hub-contraction metric exactly.
    #[inline]
    fn ew(&self, eff: bool, ei: usize) -> i64 {
        if eff && self.overlay.is_erased(ei) {
            0
        } else {
            self.index.scaled[ei]
        }
    }

    /// Bounded Dijkstra from defect node `src` (defect index `iu`). Settles
    /// exactly the nodes `w` with `d(src,w) < d_B(src) + d_B(w)` within
    /// radius `2·d_B(src)`, recording distance, parity, and predecessor
    /// edge. With `collect`, every settled defect becomes a [`Candidate`].
    /// Deterministic: integer weights, strict relaxation, (dist, node)
    /// heap order — a re-run reproduces identical state, which is what
    /// correction emission relies on.
    fn bounded_dijkstra(&mut self, src: usize, iu: u32, eff: bool, collect: bool) {
        let graph = self.graph;
        let boundary = graph.boundary();
        let n = self.index.n;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, i64::MAX);
            self.par.resize(n, false);
            self.pred.resize(n, u32::MAX);
            self.settled.resize(n, false);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        let ep = self.epoch;
        let db_src = self.db(eff, src);
        let radius = 2 * db_src;
        self.heap.clear();
        self.stamp[src] = ep;
        self.dist[src] = 0;
        self.par[src] = false;
        self.pred[src] = u32::MAX;
        self.settled[src] = false;
        self.heap.push(Reverse((0, src as u32)));
        while let Some(Reverse((d, x))) = self.heap.pop() {
            let x = x as usize;
            if self.settled[x] {
                continue;
            }
            self.settled[x] = true;
            if collect && x != src && self.defect_stamp[x] == self.defect_epoch {
                let ix = self.defect_idx[x];
                debug_assert!(d < db_src + self.db(eff, x), "dominated pair explored");
                let (i, j) = if iu < ix { (iu, ix) } else { (ix, iu) };
                self.candidates.push(Candidate {
                    i,
                    j,
                    dist: d,
                    par: self.par[x],
                    src: iu,
                });
            }
            for &ei in graph.incident(x) {
                let e = &graph.edges()[ei];
                let y = if e.a == x { e.b } else { e.a };
                if y == boundary {
                    // Paths through the boundary cost ≥ d_B(src) + d_B(y):
                    // always dominated (they are two boundary matches).
                    continue;
                }
                let nd = d + self.ew(eff, ei);
                if nd > radius || nd >= db_src.saturating_add(self.db(eff, y)) {
                    continue;
                }
                if self.stamp[y] != ep {
                    self.stamp[y] = ep;
                    self.dist[y] = i64::MAX;
                    self.settled[y] = false;
                }
                if nd < self.dist[y] {
                    self.dist[y] = nd;
                    self.par[y] = self.par[x] ^ e.flips_observable;
                    self.pred[y] = ei as u32;
                    self.heap.push(Reverse((nd, y as u32)));
                }
            }
        }
    }

    /// Recomputes the boundary index under the overlay-effective metric
    /// (erased edges free). Full-graph Dijkstra, only run on erasure shots.
    fn compute_eff_boundary(&mut self) {
        let graph = self.graph;
        let boundary = graph.boundary();
        let n = self.index.n;
        self.eff_db.clear();
        self.eff_db.resize(n, i64::MAX);
        self.eff_parb.clear();
        self.eff_parb.resize(n, false);
        self.eff_predb.clear();
        self.eff_predb.resize(n, u32::MAX);
        self.heap.clear();
        self.eff_db[boundary] = 0;
        self.heap.push(Reverse((0, boundary as u32)));
        while let Some(Reverse((d, u))) = self.heap.pop() {
            let u = u as usize;
            if d > self.eff_db[u] {
                continue;
            }
            for &ei in graph.incident(u) {
                let e = &graph.edges()[ei];
                let v = if e.a == u { e.b } else { e.a };
                let nd = d + self.ew(true, ei);
                if nd < self.eff_db[v] {
                    self.eff_db[v] = nd;
                    self.eff_parb[v] = self.eff_parb[u] ^ e.flips_observable;
                    self.eff_predb[v] = ei as u32;
                    self.heap.push(Reverse((nd, v as u32)));
                }
            }
        }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.dsu[x as usize] != x {
            let p = self.dsu[x as usize];
            let gp = self.dsu[p as usize];
            self.dsu[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Smaller root wins: component ids come out in ascending
            // defect-index order, deterministically.
            let (hi, lo) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.dsu[lo as usize] = hi;
        }
    }

    /// Emits the boundary-match path of defect node `u` (predecessor chain
    /// of the boundary Dijkstra) as edge indices.
    fn emit_boundary(&self, u: usize, eff: bool, out: &mut Vec<usize>) {
        let graph = self.graph;
        let boundary = graph.boundary();
        let mut cur = u;
        let mut guard = graph.edges().len() + 1;
        while cur != boundary {
            let ei = if eff {
                self.eff_predb[cur]
            } else {
                self.index.pred_b[cur]
            } as usize;
            out.push(ei);
            let e = &graph.edges()[ei];
            cur = if e.a == cur { e.b } else { e.a };
            guard -= 1;
            assert!(guard > 0, "boundary predecessor chain failed to terminate");
        }
    }

    /// Emits the pair path of a candidate by re-running the (deterministic)
    /// discovery Dijkstra from its source defect and walking predecessors.
    fn emit_pair(&mut self, cand: Candidate, eff: bool, defects: &[usize], out: &mut Vec<usize>) {
        let src = defects[cand.src as usize];
        let other = if cand.src == cand.i { cand.j } else { cand.i };
        let dst = defects[other as usize];
        self.bounded_dijkstra(src, cand.src, eff, false);
        debug_assert!(
            self.stamp[dst] == self.epoch && self.settled[dst],
            "emission re-run failed to reach the matched defect"
        );
        debug_assert_eq!(self.dist[dst], cand.dist, "emission distance drifted");
        debug_assert_eq!(self.par[dst], cand.par, "emission parity drifted");
        let graph = self.graph;
        let mut cur = dst;
        let mut guard = graph.edges().len() + 1;
        while cur != src {
            let ei = self.pred[cur] as usize;
            out.push(ei);
            let e = &graph.edges()[ei];
            cur = if e.a == cur { e.b } else { e.a };
            guard -= 1;
            assert!(guard > 0, "pair predecessor chain failed to terminate");
        }
    }

    /// Shared decode core; with `correction`, matched paths are also emitted
    /// as edge indices whose flip-XOR equals the returned flip.
    fn decode_inner(
        &mut self,
        syndrome: &Syndrome,
        mut correction: Option<&mut Vec<usize>>,
    ) -> DecodeOutcome {
        if let Some(c) = correction.as_deref_mut() {
            c.clear();
        }
        let defects = &syndrome.defects;
        if defects.is_empty() {
            return DecodeOutcome::default();
        }
        let start = Instant::now();
        let eff = !syndrome.erasures.is_empty();
        if eff {
            self.overlay.apply(self.graph, &syndrome.erasures);
            self.compute_eff_boundary();
        }

        // Mark this shot's defects for candidate collection.
        let n = self.index.n;
        if self.defect_stamp.len() < n {
            self.defect_stamp.resize(n, 0);
            self.defect_idx.resize(n, 0);
        }
        if self.defect_epoch == u32::MAX {
            self.defect_stamp.fill(0);
            self.defect_epoch = 0;
        }
        self.defect_epoch += 1;
        for (i, &u) in defects.iter().enumerate() {
            assert!(
                self.db(eff, u) < i64::MAX,
                "defect on node {u} cut off from the boundary cannot be matched"
            );
            self.defect_stamp[u] = self.defect_epoch;
            self.defect_idx[u] = i as u32;
        }

        // Candidate discovery: one bounded Dijkstra per defect.
        self.candidates.clear();
        for (i, &u) in defects.iter().enumerate() {
            self.bounded_dijkstra(u, i as u32, eff, true);
        }
        // Canonicalize: pairs found from both endpoints keep the low-src
        // record (sort is allocation-free; dedup keeps the first).
        self.candidates.sort_unstable_by_key(|c| (c.i, c.j, c.src));
        self.candidates.dedup_by(|a, b| a.i == b.i && a.j == b.j);

        // Component decomposition over candidate pairs.
        let k = defects.len();
        self.dsu.clear();
        self.dsu.extend(0..k as u32);
        for ci in 0..self.candidates.len() {
            let (i, j) = (self.candidates[ci].i, self.candidates[ci].j);
            self.union(i, j);
        }
        self.comp_id.clear();
        self.comp_id.resize(k, u32::MAX);
        let mut q = 0u32;
        for i in 0..k {
            if self.find(i as u32) as usize == i {
                self.comp_id[i] = q;
                q += 1;
            }
        }
        for i in 0..k {
            let r = self.find(i as u32) as usize;
            self.comp_id[i] = self.comp_id[r];
        }
        let qn = q as usize;
        // Members grouped per component (counting sort; ascending within).
        self.comp_start.clear();
        self.comp_start.resize(qn + 1, 0);
        for i in 0..k {
            self.comp_start[self.comp_id[i] as usize + 1] += 1;
        }
        for c in 0..qn {
            self.comp_start[c + 1] += self.comp_start[c];
        }
        self.member_order.clear();
        self.member_order.resize(k, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.comp_start);
        for i in 0..k {
            let c = self.comp_id[i] as usize;
            self.member_order[self.cursor[c] as usize] = i as u32;
            self.cursor[c] += 1;
        }
        // Candidates grouped per component (stable, so sorted within).
        self.cand_start.clear();
        self.cand_start.resize(qn + 1, 0);
        for cand in &self.candidates {
            self.cand_start[self.comp_id[cand.i as usize] as usize + 1] += 1;
        }
        for c in 0..qn {
            self.cand_start[c + 1] += self.cand_start[c];
        }
        self.cand_order.clear();
        self.cand_order.resize(self.candidates.len(), 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.cand_start);
        for ci in 0..self.candidates.len() {
            let c = self.comp_id[self.candidates[ci].i as usize] as usize;
            self.cand_order[self.cursor[c] as usize] = ci as u32;
            self.cursor[c] += 1;
        }

        // Per-component optimal matching.
        self.pair_out.clear();
        self.bnd_out.clear();
        if self.local_of.len() < k {
            self.local_of.resize(k, 0);
        }
        for c in 0..qn {
            let ms = self.comp_start[c] as usize;
            let me = self.comp_start[c + 1] as usize;
            let m = me - ms;
            if m == 1 {
                self.bnd_out.push(self.member_order[ms]);
                continue;
            }
            if m == 2 {
                // The candidate inequality d(u,v) < d_B(u) + d_B(v) makes
                // the pair strictly cheaper than two boundary matches.
                self.pair_out
                    .push((self.member_order[ms], self.member_order[ms + 1]));
                continue;
            }
            // Blossom on the component: defects 0..m, boundary copies
            // m..2m. Only candidate pairs get pair edges — non-candidates
            // are dominated and never needed in an optimal matching.
            for t in ms..me {
                self.local_of[self.member_order[t] as usize] = (t - ms) as u32;
            }
            let cs = self.cand_start[c] as usize;
            let ce = self.cand_start[c + 1] as usize;
            let mut cmax: i64 = 0;
            for t in cs..ce {
                cmax = cmax.max(self.candidates[self.cand_order[t] as usize].dist);
            }
            for t in ms..me {
                cmax = cmax.max(self.db(eff, defects[self.member_order[t] as usize]));
            }
            let big = cmax + 1;
            self.redux.clear();
            for t in cs..ce {
                let cand = self.candidates[self.cand_order[t] as usize];
                let li = self.local_of[cand.i as usize] as usize;
                let lj = self.local_of[cand.j as usize] as usize;
                self.redux.push((li, lj, big - cand.dist));
            }
            for li in 0..m {
                for lj in (li + 1)..m {
                    self.redux.push((m + li, m + lj, big));
                }
                let u = defects[self.member_order[ms + li] as usize];
                self.redux.push((li, m + li, big - self.db(eff, u)));
            }
            let mate = self.matching.solve(&self.redux, true);
            for (li, &partner) in mate.iter().enumerate().take(m) {
                match partner {
                    Some(lj) if lj < m => {
                        if li < lj {
                            self.pair_out
                                .push((self.member_order[ms + li], self.member_order[ms + lj]));
                        }
                    }
                    Some(_) => self.bnd_out.push(self.member_order[ms + li]),
                    None => unreachable!("perfect matching guaranteed"),
                }
            }
        }

        // Totals and correction emission.
        let mut flip = false;
        let mut wsum: i64 = 0;
        for t in 0..self.bnd_out.len() {
            let u = defects[self.bnd_out[t] as usize];
            flip ^= if eff {
                self.eff_parb[u]
            } else {
                self.index.par_b[u]
            };
            wsum += self.db(eff, u);
            if let Some(c) = correction.as_deref_mut() {
                self.emit_boundary(u, eff, c);
            }
        }
        for t in 0..self.pair_out.len() {
            let (i, j) = self.pair_out[t];
            let ci = self
                .candidates
                .binary_search_by(|cand| (cand.i, cand.j).cmp(&(i, j)))
                .expect("matched pair must be a candidate");
            let cand = self.candidates[ci];
            flip ^= cand.par;
            wsum += cand.dist;
            if let Some(c) = correction.as_deref_mut() {
                self.emit_pair(cand, eff, defects, c);
            }
        }
        if eff {
            self.overlay.restore();
        }
        DecodeOutcome {
            flip,
            weight: wsum as f64 / WEIGHT_SCALE,
            defects: defects.len(),
            nanos: start.elapsed().as_nanos() as u64,
        }
    }
}

impl SyndromeDecoder for SparseMwpmDecoder<'_> {
    fn decode_syndrome(&mut self, syndrome: &Syndrome) -> DecodeOutcome {
        self.decode_inner(syndrome, None)
    }

    fn decode_with_correction(
        &mut self,
        syndrome: &Syndrome,
        correction: &mut Vec<usize>,
    ) -> DecodeOutcome {
        self.decode_inner(syndrome, Some(correction))
    }

    /// Closed form for 1–2 erasure-free defects. One defect matches to the
    /// boundary straight off the shared index — no Dijkstra at all. Two
    /// defects run at most the same bounded pair Dijkstras the full path
    /// runs: a discovered candidate is strictly cheaper than two boundary
    /// matches (the candidate inequality), no candidate means both drain to
    /// the boundary. The candidate kept is the low-`src` record, exactly
    /// what the full path's sort + dedup canonicalization keeps, and its
    /// predecessor scratch is still current, so the correction walk emits
    /// the identical edge sequence as [`SparseMwpmDecoder`]'s `emit_pair`.
    fn decode_tier1(
        &mut self,
        syndrome: &Syndrome,
        mut correction: Option<&mut Vec<usize>>,
    ) -> Option<DecodeOutcome> {
        let defects = &syndrome.defects;
        let k = defects.len();
        if !(1..=2).contains(&k) || !syndrome.erasures.is_empty() {
            return None;
        }
        if let Some(c) = correction.as_deref_mut() {
            c.clear();
        }
        let start = Instant::now();
        for &u in defects {
            assert!(
                self.index.d_b[u] < i64::MAX,
                "defect on node {u} cut off from the boundary cannot be matched"
            );
        }
        let mut flip = false;
        let mut wsum: i64 = 0;
        if k == 1 {
            let u = defects[0];
            flip ^= self.index.par_b[u];
            wsum += self.index.d_b[u];
            if let Some(c) = correction.as_deref_mut() {
                self.emit_boundary(u, false, c);
            }
        } else {
            // Mark the defects and discover the (0, 1) candidate the way the
            // full path does, but stop at the first run that finds it: the
            // sort + dedup canonicalization keeps the low-src record anyway.
            let n = self.index.n;
            if self.defect_stamp.len() < n {
                self.defect_stamp.resize(n, 0);
                self.defect_idx.resize(n, 0);
            }
            if self.defect_epoch == u32::MAX {
                self.defect_stamp.fill(0);
                self.defect_epoch = 0;
            }
            self.defect_epoch += 1;
            for (i, &u) in defects.iter().enumerate() {
                self.defect_stamp[u] = self.defect_epoch;
                self.defect_idx[u] = i as u32;
            }
            self.candidates.clear();
            self.bounded_dijkstra(defects[0], 0, false, true);
            if self.candidates.is_empty() {
                self.bounded_dijkstra(defects[1], 1, false, true);
            }
            if let Some(&cand) = self.candidates.first() {
                flip ^= cand.par;
                wsum += cand.dist;
                if let Some(c) = correction.as_deref_mut() {
                    // The discovering run's predecessor scratch is still
                    // current (same epoch), so walk it directly — the same
                    // dst → src edge order `emit_pair` re-derives.
                    let src = defects[cand.src as usize];
                    let dst = defects[if cand.src == 0 { 1 } else { 0 }];
                    let graph = self.graph;
                    let mut cur = dst;
                    let mut guard = graph.edges().len() + 1;
                    while cur != src {
                        let ei = self.pred[cur] as usize;
                        c.push(ei);
                        let e = &graph.edges()[ei];
                        cur = if e.a == cur { e.b } else { e.a };
                        guard -= 1;
                        assert!(guard > 0, "pair predecessor chain failed to terminate");
                    }
                }
            } else {
                for &u in defects {
                    flip ^= self.index.par_b[u];
                    wsum += self.index.d_b[u];
                    if let Some(c) = correction.as_deref_mut() {
                        self.emit_boundary(u, false, c);
                    }
                }
            }
        }
        Some(DecodeOutcome {
            flip,
            weight: wsum as f64 / WEIGHT_SCALE,
            defects: k,
            nanos: start.elapsed().as_nanos() as u64,
        })
    }

    fn name(&self) -> &'static str {
        "sparse-mwpm"
    }
}

/// Factory for [`SparseMwpmDecoder`]s: computes the O(V) boundary index once
/// and shares it (via [`Arc`]) with every instance it builds.
///
/// # Example
///
/// ```
/// use qec_core::NoiseParams;
/// use qec_core::circuit::DetectorBasis;
/// use qec_decoder::{build_dem, DecoderFactory, DecodingGraph, SparseMwpmFactory, Syndrome};
/// use surface_code::{MemoryExperiment, RotatedCode};
///
/// let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
/// let detectors = exp.detectors();
/// let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
/// let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
/// let factory = SparseMwpmFactory::new(&graph);
/// let mut decoder = factory.build();
/// assert!(!decoder.decode_syndrome(&Syndrome::default()).flip);
/// ```
#[derive(Debug)]
pub struct SparseMwpmFactory<'g> {
    graph: &'g DecodingGraph,
    index: Arc<SparseIndex>,
}

impl<'g> SparseMwpmFactory<'g> {
    /// Computes the boundary index for `graph`.
    pub fn new(graph: &'g DecodingGraph) -> SparseMwpmFactory<'g> {
        SparseMwpmFactory {
            graph,
            index: Arc::new(SparseIndex::compute(graph)),
        }
    }

    /// Reuses an existing index (e.g. from an artifact cache).
    pub fn with_index(graph: &'g DecodingGraph, index: Arc<SparseIndex>) -> SparseMwpmFactory<'g> {
        SparseMwpmFactory { graph, index }
    }

    /// The shared index.
    pub fn index(&self) -> &Arc<SparseIndex> {
        &self.index
    }
}

impl DecoderFactory for SparseMwpmFactory<'_> {
    fn build(&self) -> Box<dyn SyndromeDecoder + '_> {
        Box::new(SparseMwpmDecoder::with_index(
            self.graph,
            Arc::clone(&self.index),
        ))
    }

    fn name(&self) -> &'static str {
        "sparse-mwpm"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use crate::mwpm::MwpmBatchDecoder;
    use qec_core::circuit::DetectorBasis;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    fn setup(d: usize, rounds: usize) -> (DecodingGraph, crate::DetectorErrorModel) {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        (graph, dem)
    }

    #[test]
    fn empty_syndrome_decodes_trivially() {
        let (graph, _) = setup(3, 2);
        let factory = SparseMwpmFactory::new(&graph);
        let mut decoder = factory.build();
        let outcome = decoder.decode_syndrome(&Syndrome::default());
        assert!(!outcome.flip);
        assert_eq!(outcome.weight, 0.0);
        assert_eq!(outcome.defects, 0);
    }

    #[test]
    fn factory_shares_one_index() {
        let (graph, _) = setup(3, 2);
        let factory = SparseMwpmFactory::new(&graph);
        let a = SparseMwpmDecoder::with_index(&graph, Arc::clone(factory.index()));
        let b = SparseMwpmDecoder::with_index(&graph, Arc::clone(factory.index()));
        assert!(Arc::ptr_eq(a.index(), b.index()));
    }

    #[test]
    fn boundary_index_matches_dense_distances() {
        let (graph, _) = setup(3, 3);
        let index = SparseIndex::compute(&graph);
        let paths = crate::ShortestPaths::compute(&graph);
        let b = graph.boundary();
        for v in 0..graph.num_nodes() {
            assert_eq!(
                index.boundary_distance(v),
                scale_weight(paths.distance(v, b)),
                "node {v}"
            );
        }
    }

    /// The code-distance statement, same as the dense decoder's: every
    /// single fault mechanism must be corrected without a logical error.
    #[test]
    fn single_faults_are_always_corrected() {
        for (d, rounds) in [(3usize, 3usize), (5, 4)] {
            let (graph, dem) = setup(d, rounds);
            let mut decoder = SparseMwpmDecoder::new(&graph);
            let mut checked = 0;
            let mut syndrome = Syndrome::default();
            for mech in &dem.mechanisms {
                syndrome.clear();
                syndrome.defects.extend(
                    mech.detectors
                        .iter()
                        .filter_map(|&det| graph.node_of_detector(det)),
                );
                if syndrome.is_empty() {
                    continue;
                }
                let predicted = decoder.decode_syndrome(&syndrome).flip;
                assert_eq!(
                    predicted, mech.flips_observable,
                    "single fault mis-corrected at d={d}: {mech:?}"
                );
                checked += 1;
            }
            assert!(checked > 50, "too few mechanisms checked ({checked})");
        }
    }

    /// Exhaustive weight-parity check against the dense blossom over every
    /// defect pair (the smallest non-trivial syndromes, where candidate
    /// discovery, domination pruning, and the m=2 shortcut all get hit).
    #[test]
    fn all_defect_pairs_match_dense_weight_and_flip() {
        let (graph, _) = setup(3, 2);
        let mut dense = MwpmBatchDecoder::new(&graph);
        let mut sparse = SparseMwpmDecoder::new(&graph);
        let n = graph.num_nodes();
        let mut syndrome = Syndrome::default();
        for u in 0..n {
            for v in (u + 1)..n {
                syndrome.clear();
                syndrome.defects.extend([u, v]);
                let a = dense.decode_syndrome(&syndrome);
                let b = sparse.decode_syndrome(&syndrome);
                assert_eq!(
                    scale_weight(a.weight),
                    scale_weight(b.weight),
                    "weight mismatch on pair ({u}, {v})"
                );
                assert_eq!(a.flip, b.flip, "flip mismatch on pair ({u}, {v})");
            }
        }
    }

    #[test]
    fn correction_flip_xor_matches_outcome() {
        let (graph, dem) = setup(3, 3);
        let mut decoder = SparseMwpmDecoder::new(&graph);
        let mut syndrome = Syndrome::default();
        let mut correction = Vec::new();
        // A composite syndrome from a handful of mechanisms.
        let mut events = vec![false; graph.num_nodes()];
        for mech in dem.mechanisms.iter().take(9) {
            for &det in &mech.detectors {
                if let Some(node) = graph.node_of_detector(det) {
                    events[node] ^= true;
                }
            }
        }
        syndrome
            .defects
            .extend((0..graph.num_nodes()).filter(|&v| events[v]));
        let outcome = decoder.decode_with_correction(&syndrome, &mut correction);
        let xor = correction
            .iter()
            .fold(false, |acc, &ei| acc ^ graph.edges()[ei].flips_observable);
        assert_eq!(xor, outcome.flip);
        let wsum: f64 = correction.iter().map(|&ei| graph.edges()[ei].weight).sum();
        assert_eq!(scale_weight(wsum), scale_weight(outcome.weight));
    }
}
