//! Tiered sparse-syndrome fast-path decoding (the predecoder).
//!
//! At the paper's operating points (p ≈ 1e-3) the vast majority of decode
//! calls — whole shots on the monolithic path, individual windows on the
//! streaming path — carry zero, one, or two defects, yet the pipeline pays
//! full decoder machinery for every one of them. This module fronts every
//! backend with an *exact* tier ladder:
//!
//! | Tier | Applies to | Resolution |
//! |------|------------|------------|
//! | 0 | no defects, no erasures | skip outright ([`DecodeOutcome::default`]) |
//! | 1 | 1–2 defects, no erasures | closed form via [`SyndromeDecoder::decode_tier1`] |
//! | 2 | everything else | the configured backend, unchanged |
//!
//! Every tier is bit-identical to the untier'd path: the same flip, the
//! same f64 weight bits, and the same correction-edge sequence. Tier 0
//! reproduces the empty-syndrome early return every backend already has;
//! tier 1 is each backend's own closed form (boundary match for one
//! defect; min of pair-path vs two boundary matches for two), which
//! *defers* (`None`) whenever the optimal matching is ambiguous so the
//! full solver keeps making the tie-break. The union-find backend has no
//! order-free closed form and always defers to tier 2; it still gets the
//! tier-0 skip.
//!
//! [`TieredDecoder`] wraps any [`SyndromeDecoder`] for the monolithic
//! batch path; the streaming ([`crate::window::WindowedDecoder`]) and
//! fusion ([`crate::fusion::FusionDecoder`]) paths implement the same
//! ladder inline (a window's fused carry-in defects count against the
//! tier threshold because they are part of its live defect set).
//! [`TierCounters`] is the shared mergeable telemetry.

use crate::api::{DecodeOutcome, Syndrome, SyndromeDecoder};

/// Per-tier hit/latency telemetry. Integer-valued and merged by addition,
/// so cross-thread / cross-stripe / cross-engine aggregation is exact
/// regardless of merge order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierCounters {
    /// Decode calls resolved per tier (0 = skipped, 1 = closed form,
    /// 2 = full backend).
    pub hits: [u64; 3],
    /// Wall-clock nanoseconds spent per tier.
    pub nanos: [u64; 3],
}

impl TierCounters {
    /// Records one decode call resolved at `tier`.
    #[inline]
    pub fn record(&mut self, tier: usize, nanos: u64) {
        self.hits[tier] += 1;
        self.nanos[tier] += nanos;
    }

    /// Total decode calls across all tiers.
    pub fn total(&self) -> u64 {
        self.hits.iter().sum()
    }

    /// Fraction of calls resolved at `tier` (0 when nothing was decoded).
    pub fn hit_rate(&self, tier: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.hits[tier] as f64 / total as f64
        }
    }

    /// True when any decode call was counted.
    pub fn is_active(&self) -> bool {
        self.total() > 0
    }

    /// Exact order-independent merge (sums).
    pub fn merge(&mut self, other: &TierCounters) {
        for t in 0..3 {
            self.hits[t] += other.hits[t];
            self.nanos[t] += other.nanos[t];
        }
    }
}

/// Whether a live syndrome qualifies for the tier-0 skip: nothing fired
/// and nothing was erased. Shared predicate so the monolithic, streaming,
/// and fusion paths cannot drift.
#[inline]
pub(crate) fn tier0_applies(defects: &[usize], erasures: &[usize]) -> bool {
    defects.is_empty() && erasures.is_empty()
}

/// Whether a live syndrome qualifies for a tier-1 attempt (the backend may
/// still defer): one or two defects, no erasures.
#[inline]
pub(crate) fn tier1_applies(defects: &[usize], erasures: &[usize]) -> bool {
    matches!(defects.len(), 1 | 2) && erasures.is_empty()
}

/// A [`SyndromeDecoder`] wrapper that fronts its inner backend with the
/// tier ladder — the monolithic-path integration point. When disabled it
/// forwards verbatim (no counters recorded), so the runner can construct
/// it unconditionally and flip tiers per the resolved configuration.
pub struct TieredDecoder<'a> {
    inner: Box<dyn SyndromeDecoder + 'a>,
    enabled: bool,
    counters: TierCounters,
}

impl<'a> TieredDecoder<'a> {
    /// Wraps `inner` with tiers enabled.
    pub fn new(inner: Box<dyn SyndromeDecoder + 'a>) -> TieredDecoder<'a> {
        TieredDecoder::with_enabled(inner, true)
    }

    /// Wraps `inner`, with tiers on or off.
    pub fn with_enabled(inner: Box<dyn SyndromeDecoder + 'a>, enabled: bool) -> TieredDecoder<'a> {
        TieredDecoder {
            inner,
            enabled,
            counters: TierCounters::default(),
        }
    }

    /// Whether the tier ladder is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The accumulated per-tier telemetry.
    pub fn counters(&self) -> &TierCounters {
        &self.counters
    }

    fn decode_tiered(
        &mut self,
        syndrome: &Syndrome,
        mut correction: Option<&mut Vec<usize>>,
    ) -> DecodeOutcome {
        if self.enabled {
            if tier0_applies(&syndrome.defects, &syndrome.erasures) {
                // Bit-identical by construction: every backend early-returns
                // `DecodeOutcome::default()` (clearing the correction) on an
                // empty syndrome before reading the clock.
                if let Some(c) = correction.as_deref_mut() {
                    c.clear();
                }
                self.counters.record(0, 0);
                return DecodeOutcome::default();
            }
            if tier1_applies(&syndrome.defects, &syndrome.erasures) {
                if let Some(outcome) = self.inner.decode_tier1(syndrome, correction.as_deref_mut())
                {
                    self.counters.record(1, outcome.nanos);
                    return outcome;
                }
            }
        }
        let outcome = match correction {
            Some(c) => self.inner.decode_with_correction(syndrome, c),
            None => self.inner.decode_syndrome(syndrome),
        };
        if self.enabled {
            self.counters.record(2, outcome.nanos);
        }
        outcome
    }
}

impl SyndromeDecoder for TieredDecoder<'_> {
    fn decode_syndrome(&mut self, syndrome: &Syndrome) -> DecodeOutcome {
        self.decode_tiered(syndrome, None)
    }

    fn decode_with_correction(
        &mut self,
        syndrome: &Syndrome,
        correction: &mut Vec<usize>,
    ) -> DecodeOutcome {
        self.decode_tiered(syndrome, Some(correction))
    }

    fn decode_tier1(
        &mut self,
        syndrome: &Syndrome,
        correction: Option<&mut Vec<usize>>,
    ) -> Option<DecodeOutcome> {
        self.inner.decode_tier1(syndrome, correction)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct ScriptedDecoder {
        tier1_calls: usize,
        full_calls: usize,
        tier1_supported: bool,
    }

    impl SyndromeDecoder for ScriptedDecoder {
        fn decode_syndrome(&mut self, syndrome: &Syndrome) -> DecodeOutcome {
            if syndrome.is_empty() {
                return DecodeOutcome::default();
            }
            self.full_calls += 1;
            DecodeOutcome {
                flip: syndrome.len() % 2 == 1,
                weight: syndrome.len() as f64,
                defects: syndrome.len(),
                nanos: 7,
            }
        }

        fn decode_with_correction(
            &mut self,
            syndrome: &Syndrome,
            correction: &mut Vec<usize>,
        ) -> DecodeOutcome {
            correction.clear();
            correction.extend(0..syndrome.len());
            self.decode_syndrome(syndrome)
        }

        fn decode_tier1(
            &mut self,
            syndrome: &Syndrome,
            correction: Option<&mut Vec<usize>>,
        ) -> Option<DecodeOutcome> {
            if !self.tier1_supported {
                return None;
            }
            self.tier1_calls += 1;
            if let Some(c) = correction {
                c.clear();
                c.extend(0..syndrome.len());
            }
            Some(DecodeOutcome {
                flip: syndrome.len() % 2 == 1,
                weight: syndrome.len() as f64,
                defects: syndrome.len(),
                nanos: 3,
            })
        }

        fn name(&self) -> &'static str {
            "scripted"
        }
    }

    #[test]
    fn counters_merge_and_rate() {
        let mut a = TierCounters::default();
        a.record(0, 0);
        a.record(1, 10);
        let mut b = TierCounters::default();
        b.record(2, 100);
        b.record(0, 0);
        a.merge(&b);
        assert_eq!(a.hits, [2, 1, 1]);
        assert_eq!(a.nanos, [0, 10, 100]);
        assert_eq!(a.total(), 4);
        assert!((a.hit_rate(0) - 0.5).abs() < 1e-12);
        assert!(a.is_active());
        assert!(!TierCounters::default().is_active());
        assert_eq!(TierCounters::default().hit_rate(1), 0.0);
    }

    #[test]
    fn ladder_routes_by_defect_count() {
        let inner = ScriptedDecoder {
            tier1_calls: 0,
            full_calls: 0,
            tier1_supported: true,
        };
        let mut tiered = TieredDecoder::new(Box::new(inner));
        assert_eq!(tiered.name(), "scripted");
        // Tier 0: empty syndrome never reaches the backend, and a stale
        // correction is cleared (matching the full path's contract).
        let mut correction = vec![9, 9];
        let out = tiered.decode_with_correction(&Syndrome::default(), &mut correction);
        assert_eq!(out, DecodeOutcome::default());
        assert!(correction.is_empty());
        // Tier 1: 1 and 2 defects.
        tiered.decode_syndrome(&Syndrome::new(vec![4]));
        tiered.decode_syndrome(&Syndrome::new(vec![4, 5]));
        // Tier 2: 3 defects, and 1 defect with an erasure overlay.
        tiered.decode_syndrome(&Syndrome::new(vec![1, 2, 3]));
        tiered.decode_syndrome(&Syndrome::with_erasures(vec![4], vec![0]));
        assert_eq!(tiered.counters().hits, [1, 2, 2]);
    }

    #[test]
    fn unsupported_tier1_falls_through_to_full() {
        let inner = ScriptedDecoder {
            tier1_calls: 0,
            full_calls: 0,
            tier1_supported: false,
        };
        let mut tiered = TieredDecoder::new(Box::new(inner));
        tiered.decode_syndrome(&Syndrome::new(vec![4]));
        assert_eq!(tiered.counters().hits, [0, 0, 1]);
    }

    #[test]
    fn disabled_wrapper_forwards_verbatim() {
        let inner = ScriptedDecoder {
            tier1_calls: 0,
            full_calls: 0,
            tier1_supported: true,
        };
        let mut tiered = TieredDecoder::with_enabled(Box::new(inner), false);
        assert!(!tiered.enabled());
        tiered.decode_syndrome(&Syndrome::default());
        tiered.decode_syndrome(&Syndrome::new(vec![4]));
        assert!(!tiered.counters().is_active(), "disabled records nothing");
    }
}
