//! Surface-code decoder stack.
//!
//! The ERASER paper decodes with Minimum-Weight Perfect Matching (§2.2, §5.3),
//! built on a circuit-level detector error model. This crate implements that
//! stack from scratch:
//!
//! * [`dem`] — builds a [`DetectorErrorModel`] by propagating every single
//!   Pauli fault component of a noisy circuit to the measurement record
//!   (Stim's `detector_error_model` equivalent). Leakage operations are
//!   deliberately ignored: the decoder is leakage-unaware, which is the
//!   paper's premise.
//! * [`graph`] — projects the error model onto one stabilizer basis and
//!   produces a weighted [`DecodingGraph`] (weights `ln((1−p)/p)`), with
//!   hyperedge decomposition onto elementary edges.
//! * [`matching`] — an exact maximum-weight matching implementation (Galil's
//!   O(n³) blossom algorithm, ported from the classic NetworkX formulation),
//!   validated against brute force.
//! * [`mwpm`] — the MWPM decoder: all-pairs shortest paths with
//!   observable-parity tracking, boundary handling via per-defect virtual
//!   nodes, and blossom matching.
//! * [`unionfind`] — a weighted union-find decoder (Delfosse–Nickerson) used
//!   for large code distances where O(n³) matching is too slow.
//! * [`greedy`] — a nearest-first greedy matcher, the ablation baseline.
//!
//! # Example
//!
//! ```
//! use qec_core::NoiseParams;
//! use qec_core::circuit::DetectorBasis;
//! use qec_decoder::{build_dem, DecodingGraph, Decoder, MwpmDecoder};
//! use surface_code::{MemoryExperiment, RotatedCode};
//!
//! let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
//! let detectors = exp.detectors();
//! let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
//! let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
//! let decoder = MwpmDecoder::new(&graph);
//! assert!(!decoder.decode(&[])); // no defects, no correction
//! ```

pub mod dem;
pub mod graph;
pub mod greedy;
pub mod matching;
pub mod mwpm;
pub mod unionfind;

pub use dem::{build_dem, DetectorErrorModel, ErrorMechanism};
pub use graph::{DecodingGraph, GraphEdge};
pub use greedy::GreedyDecoder;
pub use matching::max_weight_matching;
pub use mwpm::MwpmDecoder;
pub use unionfind::UnionFindDecoder;

/// A decoder maps a set of fired detectors (defects, as decoding-graph node
/// ids) to a predicted logical-observable flip.
pub trait Decoder {
    /// Predicts whether the logical observable was flipped, given the fired
    /// detector nodes.
    fn decode(&self, defects: &[usize]) -> bool;

    /// Human-readable decoder name (for experiment output).
    fn name(&self) -> &'static str;
}
