//! Surface-code decoder stack.
//!
//! The ERASER paper decodes with Minimum-Weight Perfect Matching (§2.2, §5.3),
//! built on a circuit-level detector error model. This crate implements that
//! stack from scratch:
//!
//! * [`dem`] — builds a [`DetectorErrorModel`] by propagating every single
//!   Pauli fault component of a noisy circuit to the measurement record
//!   (Stim's `detector_error_model` equivalent). Leakage operations are
//!   deliberately ignored when building the model: the *baseline* decoder is
//!   leakage-unaware, which is the paper's premise. Leakage *detection*
//!   flags can still reach the decoders at runtime through
//!   [`Syndrome::erasures`] (see [`overlay`]).
//! * [`graph`] — projects the error model onto one stabilizer basis and
//!   produces a weighted [`DecodingGraph`] (weights `ln((1−p)/p)`), with
//!   hyperedge decomposition onto elementary edges.
//! * [`matching`] — an exact maximum-weight matching implementation (Galil's
//!   O(n³) blossom algorithm, ported from the classic NetworkX formulation),
//!   validated against brute force. [`MatchingContext`] keeps the matcher's
//!   working vectors alive across solves.
//! * [`api`] — the stateful, batched decoder interface: [`Syndrome`] in,
//!   [`DecodeOutcome`] out, through a per-thread [`SyndromeDecoder`] built by
//!   a shared [`DecoderFactory`].
//! * [`mwpm`] — the MWPM decoder: all-pairs shortest paths with
//!   observable-parity tracking, boundary handling via per-defect virtual
//!   nodes, and blossom matching.
//! * [`sparse`] — the sparse (APSP-free) MWPM decoder: per-defect bounded
//!   Dijkstras over integer weights, component decomposition, and exact
//!   per-component blossom matching. Same optimal correction weight as
//!   [`mwpm`] with O(V) precomputation instead of O(V²) — the MWPM-accuracy
//!   backend for d ≥ 11.
//! * [`weight`] — the shared f64 → integer weight quantization both blossom
//!   backends use, so their optimality comparison is exact.
//! * [`unionfind`] — a weighted union-find decoder (Delfosse–Nickerson) used
//!   for large code distances where O(n³) matching is too slow.
//! * [`greedy`] — a nearest-first greedy matcher, the ablation baseline.
//! * [`overlay`] — erasure decoding: a reusable [`WeightOverlay`] that
//!   dynamically reweights the decoding-graph edges a leakage-detection
//!   policy flagged ([`Syndrome::erasures`]) to ~0 for MWPM path costs,
//!   union-find growth, and greedy pairing, then restores them. An empty
//!   erasure set decodes bit-identically to the erasure-unaware path.
//! * [`window`] — sliding-window streaming decoding: a round-indexed
//!   [`WindowGraph`] partition view, a per-graph [`WindowPlan`] whose
//!   precomputation is O(window²) per *shape* rather than O(R²), and the
//!   [`StreamingDecoder`] / [`WindowedDecoder`] round-incremental interface
//!   that gives all three decoders bounded-memory decoding at any R.
//! * [`predecode`] — the tiered sparse-syndrome fast path in front of every
//!   backend: tier 0 skips empty windows/shots outright, tier 1 resolves
//!   1–2 defect syndromes in closed form, tier 2 is the configured backend —
//!   all bit-identical to the untier'd path, with per-tier
//!   [`TierCounters`] telemetry.
//! * [`fusion`] — intra-shot parallel decoding over the window chain: a
//!   [`FusionPlan`] partitions the positions into leaf blocks, a
//!   [`FusionDecoder`] decodes them concurrently on a std-only
//!   [`FusionPool`] and fuses carries up a balanced merge tree —
//!   bit-identical to the sequential windowed path at every thread count.
//!
//! # Decoding millions of shots
//!
//! Decoder throughput is the hot path of every Monte-Carlo sweep, so the
//! primary interface is *stateful and batched*: a [`DecoderFactory`] owns the
//! expensive per-graph precomputation (the [`ShortestPaths`] table, quantized
//! union-find capacities) behind an [`std::sync::Arc`]; each worker thread
//! builds its own [`SyndromeDecoder`] whose scratch buffers are reused across
//! shots, so the steady-state [`SyndromeDecoder::decode_batch`] loop performs
//! no per-shot heap allocation.
//!
//! ```
//! use qec_core::NoiseParams;
//! use qec_core::circuit::DetectorBasis;
//! use qec_decoder::{build_dem, DecoderFactory, DecodingGraph, MwpmFactory, Syndrome};
//! use surface_code::{MemoryExperiment, RotatedCode};
//!
//! let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
//! let detectors = exp.detectors();
//! let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
//! let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
//!
//! // Expensive precomputation happens once, in the factory…
//! let factory = MwpmFactory::new(&graph);
//! // …then every worker thread builds a cheap instance with private scratch.
//! let mut decoder = factory.build();
//! let batch = vec![Syndrome::default(), Syndrome::new(vec![0, 1])];
//! let mut outcomes = Vec::new();
//! decoder.decode_batch(&batch, &mut outcomes);
//! assert!(!outcomes[0].flip); // no defects, no correction
//! assert_eq!(outcomes[1].defects, 2);
//! ```

pub mod api;
pub mod dem;
pub mod fusion;
pub mod graph;
pub mod greedy;
pub mod matching;
pub mod mwpm;
pub mod overlay;
pub mod predecode;
pub mod sparse;
pub mod unionfind;
pub mod weight;
pub mod window;

pub use api::{DecodeOutcome, DecoderFactory, Syndrome, SyndromeBuilder, SyndromeDecoder};
pub use dem::{build_dem, DetectorErrorModel, ErrorMechanism};
pub use fusion::{FusionDecoder, FusionPlan, FusionPool};
pub use graph::{DecodingGraph, GraphEdge};
pub use greedy::{GreedyBatchDecoder, GreedyFactory};
pub use matching::{max_weight_matching, MatchingContext};
pub use mwpm::{MwpmBatchDecoder, MwpmFactory, ShortestPaths};
pub use overlay::{DijkstraScratch, WeightOverlay, ERASED_WEIGHT};
pub use predecode::{TierCounters, TieredDecoder};
pub use sparse::{SparseIndex, SparseMwpmDecoder, SparseMwpmFactory};
pub use unionfind::{UnionFindBatchDecoder, UnionFindCapacities, UnionFindFactory};
pub use weight::{scale_weight, snap_weight, WEIGHT_SCALE};
pub use window::{StreamingDecoder, WindowBackend, WindowGraph, WindowPlan, WindowedDecoder};
