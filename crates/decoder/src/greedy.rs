//! Greedy nearest-first matcher — the ablation baseline decoder.
//!
//! Repeatedly matches the globally closest pair of unmatched defects (a
//! defect's distance to the boundary competes with defect–defect distances).
//! Fast and simple, but makes locally optimal choices that MWPM avoids; the
//! benchmark suite uses it to quantify what exact matching buys.
//!
//! The stateful entry point is [`GreedyFactory`] → [`GreedyBatchDecoder`];
//! the factory shares the same [`ShortestPaths`] table shape as MWPM (and
//! can reuse an MWPM factory's table via [`GreedyFactory::with_paths`]).

use crate::api::{DecodeOutcome, DecoderFactory, Syndrome, SyndromeDecoder};
use crate::graph::DecodingGraph;
use crate::mwpm::ShortestPaths;
use crate::overlay::{DijkstraScratch, WeightOverlay};
use std::sync::Arc;
use std::time::Instant;

/// Stateful greedy decoder instance: one per worker thread, built through
/// [`GreedyFactory`]. Candidate and bookkeeping buffers are reused across
/// shots.
#[derive(Debug)]
pub struct GreedyBatchDecoder<'g> {
    graph: &'g DecodingGraph,
    paths: Arc<ShortestPaths>,
    bdist: Vec<f64>,
    candidates: Vec<(f64, usize, usize)>,
    matched: Vec<bool>,
    overlay: WeightOverlay,
    eff_dist: Vec<f64>,
    eff_par: Vec<bool>,
    dijkstra: DijkstraScratch,
}

impl<'g> GreedyBatchDecoder<'g> {
    /// Builds a standalone instance, computing the shortest-path table
    /// itself. For multi-threaded decoding use [`GreedyFactory`].
    pub fn new(graph: &'g DecodingGraph) -> GreedyBatchDecoder<'g> {
        GreedyBatchDecoder::with_paths(graph, Arc::new(ShortestPaths::compute(graph)))
    }

    /// Builds an instance over a precomputed (shared) shortest-path table.
    ///
    /// # Panics
    ///
    /// Panics if `paths` was computed for a different-sized graph.
    pub fn with_paths(
        graph: &'g DecodingGraph,
        paths: Arc<ShortestPaths>,
    ) -> GreedyBatchDecoder<'g> {
        assert_eq!(
            paths.num_nodes_with_boundary(),
            graph.num_nodes() + 1,
            "shortest-path table does not match the decoding graph"
        );
        GreedyBatchDecoder {
            graph,
            paths,
            bdist: Vec::new(),
            candidates: Vec::new(),
            matched: Vec::new(),
            overlay: WeightOverlay::new(),
            eff_dist: Vec::new(),
            eff_par: Vec::new(),
            dijkstra: DijkstraScratch::new(),
        }
    }

    /// The shared shortest-path table.
    pub fn paths(&self) -> &Arc<ShortestPaths> {
        &self.paths
    }
}

impl GreedyBatchDecoder<'_> {
    /// Shared decode core; with `correction`, pairing paths are also emitted
    /// as edge indices and the returned flip is computed from those edges
    /// (bit-identical to the pairwise parity on the erasure-free path — the
    /// walk is parity-consistent — and self-consistent under erasures).
    fn decode_inner(
        &mut self,
        syndrome: &Syndrome,
        mut correction: Option<&mut Vec<usize>>,
    ) -> DecodeOutcome {
        if let Some(c) = correction.as_deref_mut() {
            c.clear();
        }
        let defects = &syndrome.defects;
        let k = defects.len();
        if k == 0 {
            // Trivial shot: skip even the clock reads (the common case at
            // low physical error rates).
            return DecodeOutcome::default();
        }
        let start = Instant::now();
        let boundary = self.graph.boundary();
        let erased = !syndrome.erasures.is_empty();
        if erased {
            // Erasure decoding: pairing costs come from the overlaid metric
            // (flagged edges ~free) instead of the precomputed table.
            self.overlay.apply(self.graph, &syndrome.erasures);
            self.overlay.effective_metrics(
                &self.paths,
                defects,
                boundary,
                &mut self.eff_dist,
                &mut self.eff_par,
            );
        }
        let t = k + 1;
        // Defect-defect candidates, nearest first. A pair is taken only if
        // pairing beats sending both ends to the boundary; everything left
        // over drains to the boundary. (Still greedy: commitments are never
        // revisited, unlike blossom matching.)
        self.bdist.clear();
        if erased {
            self.bdist.extend((0..k).map(|i| self.eff_dist[i * t + k]));
        } else {
            self.bdist
                .extend(defects.iter().map(|&d| self.paths.distance(d, boundary)));
        }
        self.candidates.clear();
        for i in 0..k {
            for j in (i + 1)..k {
                let d = if erased {
                    self.eff_dist[i * t + j]
                } else {
                    self.paths.distance(defects[i], defects[j])
                };
                self.candidates.push((d, i, j));
            }
        }
        // Unstable sort with a total-order tiebreak on (i, j): identical
        // ordering to a stable distance sort (candidates are generated in
        // (i, j) order), without the temp-buffer allocation a stable sort
        // performs on larger candidate sets.
        self.candidates.sort_unstable_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap()
                .then(a.1.cmp(&b.1))
                .then(a.2.cmp(&b.2))
        });
        self.matched.clear();
        self.matched.resize(k, false);
        let mut flip = false;
        let mut weight = 0.0;
        for ci in 0..self.candidates.len() {
            let (d, i, j) = self.candidates[ci];
            if self.matched[i] || self.matched[j] || d > self.bdist[i] + self.bdist[j] {
                continue;
            }
            self.matched[i] = true;
            self.matched[j] = true;
            flip ^= match (&mut correction, erased) {
                (Some(c), true) => self.dijkstra.effective_path_edges(
                    self.graph,
                    &self.overlay,
                    defects[i],
                    defects[j],
                    c,
                ),
                (Some(c), false) => {
                    self.paths.path_edges(self.graph, defects[i], defects[j], c);
                    self.paths.observable_parity(defects[i], defects[j])
                }
                (None, true) => self.eff_par[i * t + j],
                (None, false) => self.paths.observable_parity(defects[i], defects[j]),
            };
            weight += d;
        }
        for (i, &d) in defects.iter().enumerate() {
            if !self.matched[i] {
                flip ^= match (&mut correction, erased) {
                    (Some(c), true) => self.dijkstra.effective_path_edges(
                        self.graph,
                        &self.overlay,
                        d,
                        boundary,
                        c,
                    ),
                    (Some(c), false) => {
                        self.paths.path_edges(self.graph, d, boundary, c);
                        self.paths.observable_parity(d, boundary)
                    }
                    (None, true) => self.eff_par[i * t + k],
                    (None, false) => self.paths.observable_parity(d, boundary),
                };
                weight += self.bdist[i];
            }
        }
        if erased {
            self.overlay.restore();
        }
        DecodeOutcome {
            flip,
            weight,
            defects: k,
            nanos: start.elapsed().as_nanos() as u64,
        }
    }
}

impl SyndromeDecoder for GreedyBatchDecoder<'_> {
    fn decode_syndrome(&mut self, syndrome: &Syndrome) -> DecodeOutcome {
        self.decode_inner(syndrome, None)
    }

    fn decode_with_correction(
        &mut self,
        syndrome: &Syndrome,
        correction: &mut Vec<usize>,
    ) -> DecodeOutcome {
        self.decode_inner(syndrome, Some(correction))
    }

    /// Closed form for 1–2 erasure-free defects. One defect drains to the
    /// boundary; two defects replay the greedy loop's single decision
    /// exactly — the pair is taken unless `d > b₀ + b₁` (its skip test),
    /// so on the f64 tie the pair wins, matching the full path bit for bit.
    fn decode_tier1(
        &mut self,
        syndrome: &Syndrome,
        mut correction: Option<&mut Vec<usize>>,
    ) -> Option<DecodeOutcome> {
        let defects = &syndrome.defects;
        let k = defects.len();
        if !(1..=2).contains(&k) || !syndrome.erasures.is_empty() {
            return None;
        }
        if let Some(c) = correction.as_deref_mut() {
            c.clear();
        }
        let start = Instant::now();
        let boundary = self.graph.boundary();
        let mut flip = false;
        let mut weight = 0.0;
        let pair = k == 2 && {
            let d = self.paths.distance(defects[0], defects[1]);
            // The greedy loop's skip test, verbatim (ties take the pair).
            let dominated = d > self.paths.distance(defects[0], boundary)
                + self.paths.distance(defects[1], boundary);
            !dominated
        };
        if pair {
            flip ^= self.paths.observable_parity(defects[0], defects[1]);
            weight += self.paths.distance(defects[0], defects[1]);
            if let Some(c) = correction.as_deref_mut() {
                self.paths.path_edges(self.graph, defects[0], defects[1], c);
            }
        } else {
            for &u in defects {
                flip ^= self.paths.observable_parity(u, boundary);
                weight += self.paths.distance(u, boundary);
                if let Some(c) = correction.as_deref_mut() {
                    self.paths.path_edges(self.graph, u, boundary, c);
                }
            }
        }
        Some(DecodeOutcome {
            flip,
            weight,
            defects: k,
            nanos: start.elapsed().as_nanos() as u64,
        })
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

/// Factory for [`GreedyBatchDecoder`]s: computes (or reuses) the shortest
/// path table once and shares it with every instance it builds.
#[derive(Debug)]
pub struct GreedyFactory<'g> {
    graph: &'g DecodingGraph,
    paths: Arc<ShortestPaths>,
}

impl<'g> GreedyFactory<'g> {
    /// Computes the shortest-path table for `graph`.
    pub fn new(graph: &'g DecodingGraph) -> GreedyFactory<'g> {
        GreedyFactory {
            graph,
            paths: Arc::new(ShortestPaths::compute(graph)),
        }
    }

    /// Reuses an existing shortest-path table (e.g. one already computed by
    /// a [`crate::MwpmFactory`] on the same graph).
    pub fn with_paths(graph: &'g DecodingGraph, paths: Arc<ShortestPaths>) -> GreedyFactory<'g> {
        GreedyFactory { graph, paths }
    }

    /// The shared shortest-path table.
    pub fn paths(&self) -> &Arc<ShortestPaths> {
        &self.paths
    }
}

impl DecoderFactory for GreedyFactory<'_> {
    fn build(&self) -> Box<dyn SyndromeDecoder + '_> {
        Box::new(GreedyBatchDecoder::with_paths(
            self.graph,
            Arc::clone(&self.paths),
        ))
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use qec_core::circuit::DetectorBasis;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    #[test]
    fn greedy_corrects_most_single_faults() {
        // Greedy is *not* distance-preserving: when a defect's boundary edge
        // is individually shorter than the pair edge, it can split a pair
        // across opposite boundaries and flip the logical — that gap versus
        // exact matching is precisely what the decoder ablation measures.
        // It must still correct the overwhelming majority of single faults.
        let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        let factory = GreedyFactory::new(&graph);
        let mut decoder = factory.build();
        let mut total = 0;
        let mut correct = 0;
        let mut syndrome = Syndrome::default();
        for mech in &dem.mechanisms {
            syndrome.clear();
            syndrome.defects.extend(
                mech.detectors
                    .iter()
                    .filter_map(|&det| graph.node_of_detector(det)),
            );
            if syndrome.is_empty() {
                continue;
            }
            total += 1;
            if decoder.decode_syndrome(&syndrome).flip == mech.flips_observable {
                correct += 1;
            }
        }
        let rate = correct as f64 / total as f64;
        assert!(
            rate > 0.9,
            "greedy single-fault accuracy {rate} ({correct}/{total})"
        );
    }

    #[test]
    fn greedy_shares_paths_with_mwpm_factory() {
        let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        let mwpm = crate::MwpmFactory::new(&graph);
        let greedy = GreedyFactory::with_paths(&graph, Arc::clone(mwpm.paths()));
        assert!(Arc::ptr_eq(mwpm.paths(), greedy.paths()));
    }
}
