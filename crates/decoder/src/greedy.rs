//! Greedy nearest-first matcher — the ablation baseline decoder.
//!
//! Repeatedly matches the globally closest pair of unmatched defects (a
//! defect's distance to the boundary competes with defect–defect distances).
//! Fast and simple, but makes locally optimal choices that MWPM avoids; the
//! benchmark suite uses it to quantify what exact matching buys.

use crate::graph::DecodingGraph;
use crate::mwpm::ShortestPaths;
use crate::Decoder;

/// Greedy decoder over a decoding graph.
///
/// # Example
///
/// ```
/// use qec_core::NoiseParams;
/// use qec_core::circuit::DetectorBasis;
/// use qec_decoder::{build_dem, Decoder, DecodingGraph, GreedyDecoder};
/// use surface_code::{MemoryExperiment, RotatedCode};
///
/// let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
/// let detectors = exp.detectors();
/// let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
/// let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
/// let decoder = GreedyDecoder::new(&graph);
/// assert!(!decoder.decode(&[]));
/// ```
#[derive(Debug)]
pub struct GreedyDecoder<'g> {
    graph: &'g DecodingGraph,
    paths: ShortestPaths,
}

impl<'g> GreedyDecoder<'g> {
    /// Builds the decoder (precomputes all-pairs shortest paths).
    pub fn new(graph: &'g DecodingGraph) -> GreedyDecoder<'g> {
        GreedyDecoder {
            graph,
            paths: ShortestPaths::compute(graph),
        }
    }
}

impl Decoder for GreedyDecoder<'_> {
    fn decode(&self, defects: &[usize]) -> bool {
        let k = defects.len();
        if k == 0 {
            return false;
        }
        let boundary = self.graph.boundary();
        // Defect-defect candidates, nearest first. A pair is taken only if
        // pairing beats sending both ends to the boundary; everything left
        // over drains to the boundary. (Still greedy: commitments are never
        // revisited, unlike blossom matching.)
        let bdist: Vec<f64> = defects
            .iter()
            .map(|&d| self.paths.distance(d, boundary))
            .collect();
        let mut candidates: Vec<(f64, usize, usize)> = Vec::with_capacity(k * (k - 1) / 2);
        for i in 0..k {
            for j in (i + 1)..k {
                candidates.push((self.paths.distance(defects[i], defects[j]), i, j));
            }
        }
        candidates.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut matched = vec![false; k];
        let mut flip = false;
        for (d, i, j) in candidates {
            if matched[i] || matched[j] || d > bdist[i] + bdist[j] {
                continue;
            }
            matched[i] = true;
            matched[j] = true;
            flip ^= self.paths.observable_parity(defects[i], defects[j]);
        }
        for i in 0..k {
            if !matched[i] {
                flip ^= self.paths.observable_parity(defects[i], boundary);
            }
        }
        flip
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use qec_core::circuit::DetectorBasis;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    #[test]
    fn greedy_corrects_most_single_faults() {
        // Greedy is *not* distance-preserving: when a defect's boundary edge
        // is individually shorter than the pair edge, it can split a pair
        // across opposite boundaries and flip the logical — that gap versus
        // exact matching is precisely what the decoder ablation measures.
        // It must still correct the overwhelming majority of single faults.
        let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        let decoder = GreedyDecoder::new(&graph);
        let mut total = 0;
        let mut correct = 0;
        for mech in &dem.mechanisms {
            let defects: Vec<usize> = mech
                .detectors
                .iter()
                .filter_map(|&det| graph.node_of_detector(det))
                .collect();
            if defects.is_empty() {
                continue;
            }
            total += 1;
            if decoder.decode(&defects) == mech.flips_observable {
                correct += 1;
            }
        }
        let rate = correct as f64 / total as f64;
        assert!(
            rate > 0.9,
            "greedy single-fault accuracy {rate} ({correct}/{total})"
        );
    }
}
