//! Exact maximum-weight matching on general graphs (blossom algorithm).
//!
//! This is a Rust port of the classic O(n³) primal–dual blossom
//! implementation by Van Rantwijk (the `mwmatching.py` formulation of Galil's
//! algorithm, also used by NetworkX), specialized to integer weights so the
//! dual variables stay exact.
//!
//! The MWPM decoder reduces minimum-weight perfect matching to this routine
//! by negating distances against a large constant and requesting maximum
//! cardinality.
//!
//! The test-suite validates the implementation against an exhaustive
//! brute-force matcher on thousands of random graphs.

const NO: usize = usize::MAX;

/// Computes a maximum-weight matching of an undirected graph.
///
/// `edges` are `(u, v, weight)` triples with `u != v`; vertices are the dense
/// range `0..=max_vertex`. If `max_cardinality` is true, only maximum-
/// cardinality matchings are considered (required for perfect-matching
/// reductions).
///
/// Returns `mate`, where `mate[v]` is `Some(partner)` or `None`.
///
/// # Panics
///
/// Panics if an edge is a self-loop.
///
/// # Example
///
/// ```
/// use qec_decoder::max_weight_matching;
///
/// // Path 0-1-2 with a heavy middle edge: the middle edge wins.
/// let mate = max_weight_matching(&[(0, 1, 2), (1, 2, 5)], false);
/// assert_eq!(mate[1], Some(2));
/// assert_eq!(mate[0], None);
/// ```
pub fn max_weight_matching(
    edges: &[(usize, usize, i64)],
    max_cardinality: bool,
) -> Vec<Option<usize>> {
    MatchingContext::new()
        .solve(edges, max_cardinality)
        .to_vec()
}

/// Reusable scratch arena for the blossom matcher.
///
/// One matching per decoded shot means the matcher's ~20 working vectors are
/// the dominant allocation cost of the MWPM hot loop. A `MatchingContext`
/// keeps them alive across calls: [`MatchingContext::solve`] reuses whatever
/// capacity earlier calls grew, so repeated matchings of similar size stop
/// allocating entirely.
///
/// ```
/// use qec_decoder::MatchingContext;
///
/// let mut ctx = MatchingContext::new();
/// let mate = ctx.solve(&[(0, 1, 2), (1, 2, 5)], false);
/// assert_eq!(mate[1], Some(2));
/// // The next solve reuses the same buffers.
/// let mate = ctx.solve(&[(0, 1, 7)], false);
/// assert_eq!(mate[0], Some(1));
/// ```
#[derive(Debug, Default)]
pub struct MatchingContext {
    endpoint: Vec<usize>,
    neighbend: Vec<Vec<usize>>,
    mate: Vec<usize>,
    label: Vec<u8>,
    labelend: Vec<usize>,
    inblossom: Vec<usize>,
    blossomparent: Vec<usize>,
    blossomchilds: Vec<Vec<usize>>,
    blossombase: Vec<usize>,
    blossomendps: Vec<Vec<usize>>,
    bestedge: Vec<usize>,
    blossombestedges: Vec<Vec<usize>>,
    unusedblossoms: Vec<usize>,
    dualvar: Vec<i64>,
    allowedge: Vec<bool>,
    queue: Vec<usize>,
    mate_out: Vec<Option<usize>>,
}

impl MatchingContext {
    /// An empty context; buffers grow on first use.
    pub fn new() -> MatchingContext {
        MatchingContext::default()
    }

    /// Computes a maximum-weight matching (semantics of
    /// [`max_weight_matching`]) reusing this context's buffers. The returned
    /// slice is valid until the next `solve` call.
    pub fn solve(
        &mut self,
        edges: &[(usize, usize, i64)],
        max_cardinality: bool,
    ) -> &[Option<usize>] {
        self.mate_out.clear();
        if edges.is_empty() {
            return &self.mate_out;
        }
        let mut m = Matcher::from_context(edges, max_cardinality, self);
        m.solve();
        self.mate_out.extend(
            m.mate
                .iter()
                .map(|&p| if p == NO { None } else { Some(m.endpoint[p]) }),
        );
        m.release(self);
        &self.mate_out
    }
}

/// Clears the first `n` inner vectors (keeping their capacity) and ensures at
/// least `n` of them exist.
fn reset_nested(v: &mut Vec<Vec<usize>>, n: usize) {
    for inner in v.iter_mut() {
        inner.clear();
    }
    if v.len() < n {
        v.resize_with(n, Vec::new);
    }
}

struct Matcher<'e> {
    edges: &'e [(usize, usize, i64)],
    max_cardinality: bool,
    nvertex: usize,
    endpoint: Vec<usize>,
    neighbend: Vec<Vec<usize>>,
    mate: Vec<usize>,
    label: Vec<u8>,
    labelend: Vec<usize>,
    inblossom: Vec<usize>,
    blossomparent: Vec<usize>,
    blossomchilds: Vec<Vec<usize>>,
    blossombase: Vec<usize>,
    blossomendps: Vec<Vec<usize>>,
    bestedge: Vec<usize>,
    blossombestedges: Vec<Vec<usize>>,
    unusedblossoms: Vec<usize>,
    dualvar: Vec<i64>,
    allowedge: Vec<bool>,
    queue: Vec<usize>,
}

impl<'e> Matcher<'e> {
    /// Builds a matcher over `edges`, borrowing the context's buffers (moved
    /// out, returned by [`Matcher::release`]). Reuses whatever capacity
    /// earlier solves grew; only genuinely larger problems allocate.
    fn from_context(
        edges: &'e [(usize, usize, i64)],
        max_cardinality: bool,
        ctx: &mut MatchingContext,
    ) -> Matcher<'e> {
        let mut nvertex = 0;
        for &(i, j, _) in edges {
            assert!(i != j, "self-loop in matching input");
            nvertex = nvertex.max(i + 1).max(j + 1);
        }
        let maxweight = edges.iter().map(|e| e.2).max().unwrap_or(0).max(0);
        let nedge = edges.len();

        let mut endpoint = std::mem::take(&mut ctx.endpoint);
        endpoint.clear();
        endpoint.extend((0..2 * nedge).map(|p| {
            if p % 2 == 0 {
                edges[p / 2].0
            } else {
                edges[p / 2].1
            }
        }));

        let mut neighbend = std::mem::take(&mut ctx.neighbend);
        reset_nested(&mut neighbend, nvertex);
        for (k, &(i, j, _)) in edges.iter().enumerate() {
            neighbend[i].push(2 * k + 1);
            neighbend[j].push(2 * k);
        }

        let mut mate = std::mem::take(&mut ctx.mate);
        mate.clear();
        mate.resize(nvertex, NO);
        let mut label = std::mem::take(&mut ctx.label);
        label.clear();
        label.resize(2 * nvertex, 0);
        let mut labelend = std::mem::take(&mut ctx.labelend);
        labelend.clear();
        labelend.resize(2 * nvertex, NO);
        let mut inblossom = std::mem::take(&mut ctx.inblossom);
        inblossom.clear();
        inblossom.extend(0..nvertex);
        let mut blossomparent = std::mem::take(&mut ctx.blossomparent);
        blossomparent.clear();
        blossomparent.resize(2 * nvertex, NO);
        let mut blossomchilds = std::mem::take(&mut ctx.blossomchilds);
        reset_nested(&mut blossomchilds, 2 * nvertex);
        let mut blossombase = std::mem::take(&mut ctx.blossombase);
        blossombase.clear();
        blossombase.extend(0..nvertex);
        blossombase.resize(2 * nvertex, NO);
        let mut blossomendps = std::mem::take(&mut ctx.blossomendps);
        reset_nested(&mut blossomendps, 2 * nvertex);
        let mut bestedge = std::mem::take(&mut ctx.bestedge);
        bestedge.clear();
        bestedge.resize(2 * nvertex, NO);
        let mut blossombestedges = std::mem::take(&mut ctx.blossombestedges);
        reset_nested(&mut blossombestedges, 2 * nvertex);
        let mut unusedblossoms = std::mem::take(&mut ctx.unusedblossoms);
        unusedblossoms.clear();
        unusedblossoms.extend(nvertex..2 * nvertex);
        let mut dualvar = std::mem::take(&mut ctx.dualvar);
        dualvar.clear();
        dualvar.resize(nvertex, maxweight);
        dualvar.resize(2 * nvertex, 0);
        let mut allowedge = std::mem::take(&mut ctx.allowedge);
        allowedge.clear();
        allowedge.resize(nedge, false);
        let mut queue = std::mem::take(&mut ctx.queue);
        queue.clear();

        Matcher {
            edges,
            max_cardinality,
            nvertex,
            endpoint,
            neighbend,
            mate,
            label,
            labelend,
            inblossom,
            blossomparent,
            blossomchilds,
            blossombase,
            blossomendps,
            bestedge,
            blossombestedges,
            unusedblossoms,
            dualvar,
            allowedge,
            queue,
        }
    }

    /// Returns the working buffers to the context for the next solve.
    fn release(self, ctx: &mut MatchingContext) {
        ctx.endpoint = self.endpoint;
        ctx.neighbend = self.neighbend;
        ctx.mate = self.mate;
        ctx.label = self.label;
        ctx.labelend = self.labelend;
        ctx.inblossom = self.inblossom;
        ctx.blossomparent = self.blossomparent;
        ctx.blossomchilds = self.blossomchilds;
        ctx.blossombase = self.blossombase;
        ctx.blossomendps = self.blossomendps;
        ctx.bestedge = self.bestedge;
        ctx.blossombestedges = self.blossombestedges;
        ctx.unusedblossoms = self.unusedblossoms;
        ctx.dualvar = self.dualvar;
        ctx.allowedge = self.allowedge;
        ctx.queue = self.queue;
    }

    fn slack(&self, k: usize) -> i64 {
        let (i, j, wt) = self.edges[k];
        self.dualvar[i] + self.dualvar[j] - 2 * wt
    }

    fn blossom_leaves(&self, b: usize, out: &mut Vec<usize>) {
        if b < self.nvertex {
            out.push(b);
        } else {
            // Children are cloned into a worklist to sidestep borrow issues;
            // blossom trees are shallow in practice.
            let childs = self.blossomchilds[b].clone();
            for t in childs {
                self.blossom_leaves(t, out);
            }
        }
    }

    fn leaves(&self, b: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.blossom_leaves(b, &mut out);
        out
    }

    fn assign_label(&mut self, w: usize, t: u8, p: usize) {
        let b = self.inblossom[w];
        debug_assert!(self.label[w] == 0 && self.label[b] == 0);
        self.label[w] = t;
        self.label[b] = t;
        self.labelend[w] = p;
        self.labelend[b] = p;
        self.bestedge[w] = NO;
        self.bestedge[b] = NO;
        if t == 1 {
            if b < self.nvertex {
                // Single-vertex "blossom": skip the leaf-collection allocation
                // (the overwhelmingly common case on decoder workloads).
                self.queue.push(b);
            } else {
                let mut l = self.leaves(b);
                self.queue.append(&mut l);
            }
        } else if t == 2 {
            let base = self.blossombase[b];
            debug_assert!(self.mate[base] != NO);
            let mb = self.mate[base];
            self.assign_label(self.endpoint[mb], 1, mb ^ 1);
        }
    }

    fn scan_blossom(&mut self, v0: usize, w0: usize) -> usize {
        let mut path = Vec::new();
        let mut base = NO;
        let mut v = v0;
        let mut w = w0;
        loop {
            if v == NO && w == NO {
                break;
            }
            if v != NO {
                let b = self.inblossom[v];
                if self.label[b] & 4 != 0 {
                    base = self.blossombase[b];
                    break;
                }
                debug_assert_eq!(self.label[b], 1);
                path.push(b);
                self.label[b] = 5;
                debug_assert_eq!(self.labelend[b], self.mate[self.blossombase[b]]);
                if self.labelend[b] == NO {
                    v = NO;
                } else {
                    let t = self.endpoint[self.labelend[b]];
                    let bt = self.inblossom[t];
                    debug_assert_eq!(self.label[bt], 2);
                    debug_assert!(self.labelend[bt] != NO);
                    v = self.endpoint[self.labelend[bt]];
                }
            }
            if w != NO {
                std::mem::swap(&mut v, &mut w);
            }
        }
        for b in path {
            self.label[b] = 1;
        }
        base
    }

    fn add_blossom(&mut self, base: usize, k: usize) {
        let (mut v, mut w, _) = self.edges[k];
        let bb = self.inblossom[base];
        let mut bv = self.inblossom[v];
        let mut bw = self.inblossom[w];
        let b = self.unusedblossoms.pop().expect("blossom pool exhausted");
        self.blossombase[b] = base;
        self.blossomparent[b] = NO;
        self.blossomparent[bb] = b;
        let mut path = Vec::new();
        let mut endps = Vec::new();
        while bv != bb {
            self.blossomparent[bv] = b;
            path.push(bv);
            endps.push(self.labelend[bv]);
            debug_assert!(
                self.label[bv] == 2
                    || (self.label[bv] == 1
                        && self.labelend[bv] == self.mate[self.blossombase[bv]])
            );
            debug_assert!(self.labelend[bv] != NO);
            v = self.endpoint[self.labelend[bv]];
            bv = self.inblossom[v];
        }
        path.push(bb);
        path.reverse();
        endps.reverse();
        endps.push(2 * k);
        while bw != bb {
            self.blossomparent[bw] = b;
            path.push(bw);
            endps.push(self.labelend[bw] ^ 1);
            debug_assert!(
                self.label[bw] == 2
                    || (self.label[bw] == 1
                        && self.labelend[bw] == self.mate[self.blossombase[bw]])
            );
            debug_assert!(self.labelend[bw] != NO);
            w = self.endpoint[self.labelend[bw]];
            bw = self.inblossom[w];
        }
        self.blossomchilds[b] = path.clone();
        self.blossomendps[b] = endps;
        debug_assert_eq!(self.label[bb], 1);
        self.label[b] = 1;
        self.labelend[b] = self.labelend[bb];
        self.dualvar[b] = 0;
        for v in self.leaves(b) {
            if self.label[self.inblossom[v]] == 2 {
                self.queue.push(v);
            }
            self.inblossom[v] = b;
        }
        // Compute blossombestedges[b].
        let mut bestedgeto = vec![NO; 2 * self.nvertex];
        for &bv in &path {
            let nblists: Vec<Vec<usize>> = if self.blossombestedges[bv].is_empty() {
                self.leaves(bv)
                    .into_iter()
                    .map(|v| self.neighbend[v].iter().map(|p| p / 2).collect())
                    .collect()
            } else {
                vec![self.blossombestedges[bv].clone()]
            };
            for nblist in nblists {
                for k in nblist {
                    let (mut i, mut j, _) = self.edges[k];
                    if self.inblossom[j] == b {
                        std::mem::swap(&mut i, &mut j);
                    }
                    let bj = self.inblossom[j];
                    if bj != b
                        && self.label[bj] == 1
                        && (bestedgeto[bj] == NO || self.slack(k) < self.slack(bestedgeto[bj]))
                    {
                        bestedgeto[bj] = k;
                    }
                }
            }
            self.blossombestedges[bv] = Vec::new();
            self.bestedge[bv] = NO;
        }
        self.blossombestedges[b] = bestedgeto.into_iter().filter(|&k| k != NO).collect();
        self.bestedge[b] = NO;
        for idx in 0..self.blossombestedges[b].len() {
            let k = self.blossombestedges[b][idx];
            if self.bestedge[b] == NO || self.slack(k) < self.slack(self.bestedge[b]) {
                self.bestedge[b] = k;
            }
        }
    }

    /// Wraparound indexing matching Python's negative-index semantics.
    fn child_at(&self, b: usize, j: isize) -> usize {
        let n = self.blossomchilds[b].len() as isize;
        self.blossomchilds[b][(((j % n) + n) % n) as usize]
    }

    fn endp_at(&self, b: usize, j: isize) -> usize {
        let n = self.blossomendps[b].len() as isize;
        self.blossomendps[b][(((j % n) + n) % n) as usize]
    }

    fn expand_blossom(&mut self, b: usize, endstage: bool) {
        let childs = self.blossomchilds[b].clone();
        for &s in &childs {
            self.blossomparent[s] = NO;
            if s < self.nvertex {
                self.inblossom[s] = s;
            } else if endstage && self.dualvar[s] == 0 {
                self.expand_blossom(s, endstage);
            } else {
                for v in self.leaves(s) {
                    self.inblossom[v] = s;
                }
            }
        }
        if !endstage && self.label[b] == 2 {
            debug_assert!(self.labelend[b] != NO);
            let entrychild = self.inblossom[self.endpoint[self.labelend[b] ^ 1]];
            let mut j = childs.iter().position(|&c| c == entrychild).unwrap() as isize;
            let (jstep, endptrick): (isize, usize) = if j & 1 != 0 {
                j -= childs.len() as isize;
                (1, 0)
            } else {
                (-1, 1)
            };
            let mut p = self.labelend[b];
            while j != 0 {
                // Relabel the T-sub-blossom.
                self.label[self.endpoint[p ^ 1]] = 0;
                let q = self.endp_at(b, j - endptrick as isize) ^ endptrick ^ 1;
                self.label[self.endpoint[q]] = 0;
                self.assign_label(self.endpoint[p ^ 1], 2, p);
                // Step to the next S-sub-blossom and note its forward endpoint.
                let fwd = self.endp_at(b, j - endptrick as isize) / 2;
                self.allowedge[fwd] = true;
                j += jstep;
                p = self.endp_at(b, j - endptrick as isize) ^ endptrick;
                // Step to the next T-sub-blossom.
                self.allowedge[p / 2] = true;
                j += jstep;
            }
            // Relabel the base T-sub-blossom WITHOUT stepping through to its
            // mate.
            let bv = self.child_at(b, j);
            let ep = self.endpoint[p ^ 1];
            self.label[ep] = 2;
            self.label[bv] = 2;
            self.labelend[ep] = p;
            self.labelend[bv] = p;
            self.bestedge[bv] = NO;
            // Continue along the blossom until we get back to entrychild.
            j += jstep;
            while self.child_at(b, j) != entrychild {
                let bv = self.child_at(b, j);
                if self.label[bv] == 1 {
                    j += jstep;
                    continue;
                }
                let labelled = self.leaves(bv).into_iter().find(|&v| self.label[v] != 0);
                if let Some(v) = labelled {
                    debug_assert_eq!(self.label[v], 2);
                    debug_assert_eq!(self.inblossom[v], bv);
                    self.label[v] = 0;
                    let base_mate = self.mate[self.blossombase[bv]];
                    self.label[self.endpoint[base_mate]] = 0;
                    let le = self.labelend[v];
                    self.assign_label(v, 2, le);
                }
                j += jstep;
            }
        }
        // Recycle the blossom number.
        self.label[b] = 0;
        self.labelend[b] = NO;
        self.blossomchilds[b] = Vec::new();
        self.blossomendps[b] = Vec::new();
        self.blossombase[b] = NO;
        self.blossombestedges[b] = Vec::new();
        self.bestedge[b] = NO;
        self.unusedblossoms.push(b);
    }

    fn augment_blossom(&mut self, b: usize, v: usize) {
        let mut t = v;
        while self.blossomparent[t] != b {
            t = self.blossomparent[t];
        }
        if t >= self.nvertex {
            self.augment_blossom(t, v);
        }
        let i = self.blossomchilds[b].iter().position(|&c| c == t).unwrap() as isize;
        let mut j = i;
        let (jstep, endptrick): (isize, usize) = if i & 1 != 0 {
            j -= self.blossomchilds[b].len() as isize;
            (1, 0)
        } else {
            (-1, 1)
        };
        while j != 0 {
            j += jstep;
            let t1 = self.child_at(b, j);
            let p = self.endp_at(b, j - endptrick as isize) ^ endptrick;
            if t1 >= self.nvertex {
                self.augment_blossom(t1, self.endpoint[p]);
            }
            j += jstep;
            let t2 = self.child_at(b, j);
            if t2 >= self.nvertex {
                self.augment_blossom(t2, self.endpoint[p ^ 1]);
            }
            self.mate[self.endpoint[p]] = p ^ 1;
            self.mate[self.endpoint[p ^ 1]] = p;
        }
        let i = i as usize;
        self.blossomchilds[b].rotate_left(i);
        self.blossomendps[b].rotate_left(i);
        self.blossombase[b] = self.blossombase[self.blossomchilds[b][0]];
        debug_assert_eq!(self.blossombase[b], v);
    }

    fn augment_matching(&mut self, k: usize) {
        let (v, w, _) = self.edges[k];
        for (mut s, mut p) in [(v, 2 * k + 1), (w, 2 * k)] {
            loop {
                let bs = self.inblossom[s];
                debug_assert_eq!(self.label[bs], 1);
                debug_assert_eq!(self.labelend[bs], self.mate[self.blossombase[bs]]);
                if bs >= self.nvertex {
                    self.augment_blossom(bs, s);
                }
                self.mate[s] = p;
                if self.labelend[bs] == NO {
                    break;
                }
                let t = self.endpoint[self.labelend[bs]];
                let bt = self.inblossom[t];
                debug_assert_eq!(self.label[bt], 2);
                debug_assert!(self.labelend[bt] != NO);
                s = self.endpoint[self.labelend[bt]];
                let j = self.endpoint[self.labelend[bt] ^ 1];
                debug_assert_eq!(self.blossombase[bt], t);
                if bt >= self.nvertex {
                    self.augment_blossom(bt, j);
                }
                self.mate[j] = self.labelend[bt];
                p = self.labelend[bt] ^ 1;
            }
        }
    }

    fn solve(&mut self) {
        let nvertex = self.nvertex;
        for _ in 0..nvertex {
            self.label.fill(0);
            self.bestedge.fill(NO);
            for b in nvertex..2 * nvertex {
                self.blossombestedges[b] = Vec::new();
            }
            self.allowedge.fill(false);
            self.queue.clear();
            for v in 0..nvertex {
                if self.mate[v] == NO && self.label[self.inblossom[v]] == 0 {
                    self.assign_label(v, 1, NO);
                }
            }
            let mut augmented = false;
            loop {
                while let Some(v) = if augmented { None } else { self.queue.pop() } {
                    debug_assert_eq!(self.label[self.inblossom[v]], 1);
                    // `neighbend` is immutable during a solve; index to avoid
                    // cloning the adjacency list on every queue pop.
                    for ni in 0..self.neighbend[v].len() {
                        let p = self.neighbend[v][ni];
                        let k = p / 2;
                        let w = self.endpoint[p];
                        if self.inblossom[v] == self.inblossom[w] {
                            continue;
                        }
                        if !self.allowedge[k] {
                            let kslack = self.slack(k);
                            if kslack <= 0 {
                                self.allowedge[k] = true;
                            } else if self.label[self.inblossom[w]] == 1 {
                                let b = self.inblossom[v];
                                if self.bestedge[b] == NO || kslack < self.slack(self.bestedge[b]) {
                                    self.bestedge[b] = k;
                                }
                            } else if self.label[w] == 0
                                && (self.bestedge[w] == NO || kslack < self.slack(self.bestedge[w]))
                            {
                                self.bestedge[w] = k;
                            }
                        }
                        if self.allowedge[k] {
                            if self.label[self.inblossom[w]] == 0 {
                                self.assign_label(w, 2, p ^ 1);
                            } else if self.label[self.inblossom[w]] == 1 {
                                let base = self.scan_blossom(v, w);
                                if base != NO {
                                    self.add_blossom(base, k);
                                } else {
                                    self.augment_matching(k);
                                    augmented = true;
                                    break;
                                }
                            } else if self.label[w] == 0 {
                                debug_assert_eq!(self.label[self.inblossom[w]], 2);
                                self.label[w] = 2;
                                self.labelend[w] = p ^ 1;
                            }
                        }
                    }
                }
                if augmented {
                    break;
                }
                // Compute delta.
                let mut deltatype = -1i32;
                let mut delta = 0i64;
                let mut deltaedge = NO;
                let mut deltablossom = NO;
                if !self.max_cardinality {
                    deltatype = 1;
                    delta = self.dualvar[..nvertex]
                        .iter()
                        .copied()
                        .min()
                        .unwrap()
                        .max(0);
                }
                for v in 0..nvertex {
                    if self.label[self.inblossom[v]] == 0 && self.bestedge[v] != NO {
                        let d = self.slack(self.bestedge[v]);
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 2;
                            deltaedge = self.bestedge[v];
                        }
                    }
                }
                for b in 0..2 * nvertex {
                    if self.blossomparent[b] == NO && self.label[b] == 1 && self.bestedge[b] != NO {
                        let kslack = self.slack(self.bestedge[b]);
                        debug_assert_eq!(kslack % 2, 0, "integral weights keep slack even");
                        let d = kslack / 2;
                        if deltatype == -1 || d < delta {
                            delta = d;
                            deltatype = 3;
                            deltaedge = self.bestedge[b];
                        }
                    }
                }
                for b in nvertex..2 * nvertex {
                    if self.blossombase[b] != NO
                        && self.blossomparent[b] == NO
                        && self.label[b] == 2
                        && (deltatype == -1 || self.dualvar[b] < delta)
                    {
                        delta = self.dualvar[b];
                        deltatype = 4;
                        deltablossom = b;
                    }
                }
                if deltatype == -1 {
                    debug_assert!(self.max_cardinality);
                    deltatype = 1;
                    delta = self.dualvar[..nvertex]
                        .iter()
                        .copied()
                        .min()
                        .unwrap()
                        .max(0);
                }
                // Update dual variables.
                for v in 0..nvertex {
                    match self.label[self.inblossom[v]] {
                        1 => self.dualvar[v] -= delta,
                        2 => self.dualvar[v] += delta,
                        _ => {}
                    }
                }
                for b in nvertex..2 * nvertex {
                    if self.blossombase[b] != NO && self.blossomparent[b] == NO {
                        match self.label[b] {
                            1 => self.dualvar[b] += delta,
                            2 => self.dualvar[b] -= delta,
                            _ => {}
                        }
                    }
                }
                match deltatype {
                    1 => break,
                    2 => {
                        self.allowedge[deltaedge] = true;
                        let (mut i, j, _) = self.edges[deltaedge];
                        if self.label[self.inblossom[i]] == 0 {
                            i = j;
                        }
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    3 => {
                        self.allowedge[deltaedge] = true;
                        let (i, _, _) = self.edges[deltaedge];
                        debug_assert_eq!(self.label[self.inblossom[i]], 1);
                        self.queue.push(i);
                    }
                    _ => self.expand_blossom(deltablossom, false),
                }
            }
            if !augmented {
                break;
            }
            for b in nvertex..2 * nvertex {
                if self.blossomparent[b] == NO
                    && self.blossombase[b] != NO
                    && self.label[b] == 1
                    && self.dualvar[b] == 0
                {
                    self.expand_blossom(b, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive matcher for validation: maximizes (cardinality, weight) if
    /// `max_cardinality`, else plain weight.
    fn brute_force(n: usize, edges: &[(usize, usize, i64)], max_cardinality: bool) -> (usize, i64) {
        fn rec(
            edges: &[(usize, usize, i64)],
            used: &mut Vec<bool>,
            idx: usize,
            card: usize,
            weight: i64,
            best: &mut (usize, i64),
            max_cardinality: bool,
        ) {
            let better = if max_cardinality {
                (card, weight) > *best
            } else {
                weight > best.1
            };
            if better {
                *best = (card, weight);
            }
            if idx == edges.len() {
                return;
            }
            rec(edges, used, idx + 1, card, weight, best, max_cardinality);
            let (u, v, w) = edges[idx];
            if !used[u] && !used[v] {
                used[u] = true;
                used[v] = true;
                rec(
                    edges,
                    used,
                    idx + 1,
                    card + 1,
                    weight + w,
                    best,
                    max_cardinality,
                );
                used[u] = false;
                used[v] = false;
            }
        }
        let mut best = (0, 0);
        let mut used = vec![false; n];
        rec(edges, &mut used, 0, 0, 0, &mut best, max_cardinality);
        best
    }

    fn matching_stats(mate: &[Option<usize>], edges: &[(usize, usize, i64)]) -> (usize, i64) {
        // Validate symmetry.
        for (v, &m) in mate.iter().enumerate() {
            if let Some(w) = m {
                assert_eq!(mate[w], Some(v), "asymmetric mate array");
            }
        }
        let mut card = 0;
        let mut weight = 0;
        for &(u, v, w) in edges {
            if mate.get(u).copied().flatten() == Some(v) {
                card += 1;
                weight += w;
            }
        }
        (card, weight)
    }

    #[test]
    fn empty_graph() {
        assert!(max_weight_matching(&[], false).is_empty());
    }

    #[test]
    fn single_edge() {
        let mate = max_weight_matching(&[(0, 1, 5)], false);
        assert_eq!(mate[0], Some(1));
        assert_eq!(mate[1], Some(0));
    }

    #[test]
    fn negative_weight_ignored_without_cardinality() {
        let mate = max_weight_matching(&[(0, 1, -5)], false);
        assert_eq!(mate[0], None);
    }

    #[test]
    fn negative_weight_used_with_cardinality() {
        let mate = max_weight_matching(&[(0, 1, -5)], true);
        assert_eq!(mate[0], Some(1));
    }

    #[test]
    fn path_prefers_heavy_middle() {
        let mate = max_weight_matching(&[(0, 1, 2), (1, 2, 5), (2, 3, 2)], false);
        // Taking the two outer edges (weight 4) loses to… actually 2+2=4 < 5?
        // No: outer edges are disjoint, total 4 < 5. Middle edge alone wins.
        assert_eq!(mate[1], Some(2));
        assert_eq!(mate[0], None);
        assert_eq!(mate[3], None);
    }

    #[test]
    fn classic_blossom_case() {
        // Triangle 0-1-2 plus pendant 2-3: must form a blossom and match
        // (0,1), (2,3).
        let edges = [(0, 1, 6), (0, 2, 5), (1, 2, 5), (2, 3, 4)];
        let mate = max_weight_matching(&edges, false);
        assert_eq!(mate[0], Some(1));
        assert_eq!(mate[2], Some(3));
    }

    #[test]
    fn nested_blossom_expansion() {
        // The classic nested S-blossom test from mwmatching.py (test case
        // t_nested): create nested S-blossom, use for augmentation.
        let edges = [
            (1, 2, 9),
            (1, 3, 9),
            (2, 3, 10),
            (2, 4, 8),
            (3, 5, 8),
            (4, 5, 10),
            (5, 6, 6),
        ];
        let mate = max_weight_matching(&edges, false);
        assert_eq!(mate[1], Some(3));
        assert_eq!(mate[2], Some(4));
        assert_eq!(mate[5], Some(6));
    }

    #[test]
    fn s_blossom_relabel_expand() {
        // mwmatching.py t_relabel_nested: create nested S-blossom, relabel as
        // T, expand.
        let edges = [
            (1, 2, 19),
            (1, 3, 20),
            (1, 8, 8),
            (2, 3, 25),
            (2, 4, 18),
            (3, 5, 18),
            (4, 5, 13),
            (4, 7, 7),
            (5, 6, 7),
        ];
        let mate = max_weight_matching(&edges, false);
        let expect = [NO, 8, 3, 2, 7, 6, 5, 4, 1];
        for v in 1..=8 {
            assert_eq!(mate[v], Some(expect[v]), "vertex {v}");
        }
    }

    #[test]
    fn t_blossom_augmented_expand() {
        // mwmatching.py t_nasty: create blossom, relabel as T in more than
        // one way, expand, augment.
        let edges = [
            (1, 2, 45),
            (1, 5, 45),
            (2, 3, 50),
            (3, 4, 45),
            (4, 5, 50),
            (1, 6, 30),
            (3, 9, 35),
            (4, 8, 35),
            (5, 7, 26),
            (9, 10, 5),
        ];
        let mate = max_weight_matching(&edges, false);
        let expect = [NO, 6, 3, 2, 8, 7, 1, 5, 4, 10, 9];
        for v in 1..=10 {
            assert_eq!(mate[v], Some(expect[v]), "vertex {v}");
        }
    }

    #[test]
    fn random_graphs_match_brute_force_weight() {
        let mut rng = qec_core::Rng::new(20240607);
        for trial in 0..400 {
            let n = 2 + (rng.below(6) as usize); // 2..=7 vertices
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.bernoulli(0.7) {
                        let w = rng.below(21) as i64 - 4; // some negatives
                        edges.push((u, v, w));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            for &maxcard in &[false, true] {
                let mate = max_weight_matching(&edges, maxcard);
                let mut mate_full = mate.clone();
                mate_full.resize(n, None);
                let (card, weight) = matching_stats(&mate_full, &edges);
                let (bcard, bweight) = brute_force(n, &edges, maxcard);
                if maxcard {
                    assert_eq!(
                        (card, weight),
                        (bcard, bweight),
                        "trial {trial} maxcard: edges {edges:?}"
                    );
                } else {
                    assert_eq!(weight, bweight, "trial {trial}: edges {edges:?}");
                }
            }
        }
    }

    #[test]
    fn context_reuse_matches_fresh_solves() {
        // A reused context must be indistinguishable from a fresh matcher on
        // every call, across wildly varying problem sizes (stale scratch from
        // a bigger earlier problem must never leak into a smaller one).
        let mut ctx = MatchingContext::new();
        let mut rng = qec_core::Rng::new(31337);
        for trial in 0..200 {
            let n = 2 + (rng.below(7) as usize);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in (u + 1)..n {
                    if rng.bernoulli(0.8) {
                        edges.push((u, v, rng.below(50) as i64 - 5));
                    }
                }
            }
            if edges.is_empty() {
                continue;
            }
            for &maxcard in &[false, true] {
                let reused = ctx.solve(&edges, maxcard).to_vec();
                let fresh = max_weight_matching(&edges, maxcard);
                assert_eq!(reused, fresh, "trial {trial} maxcard={maxcard}");
            }
        }
    }

    #[test]
    fn context_handles_empty_input() {
        let mut ctx = MatchingContext::new();
        assert!(ctx.solve(&[], true).is_empty());
        assert_eq!(ctx.solve(&[(0, 1, 3)], false), &[Some(1), Some(0)]);
        assert!(ctx.solve(&[], false).is_empty());
    }

    #[test]
    fn perfect_matching_on_complete_even_graph() {
        // Complete K6 with random weights must produce a perfect matching
        // under max_cardinality.
        let mut rng = qec_core::Rng::new(9);
        for _ in 0..50 {
            let mut edges = Vec::new();
            for u in 0..6 {
                for v in (u + 1)..6 {
                    edges.push((u, v, rng.below(100) as i64));
                }
            }
            let mate = max_weight_matching(&edges, true);
            assert!(mate.iter().all(|m| m.is_some()), "not perfect: {mate:?}");
        }
    }
}
