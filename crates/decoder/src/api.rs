//! The stateful, batched decoder API.
//!
//! Decoding is the hot path of every figure sweep: millions of shots flow
//! through one decoder per worker thread. The API here is shaped for that
//! workload, following the design of production matching libraries
//! (fusion-blossom's reusable `Solver`, PyMatching's `Matching` object):
//!
//! * [`Syndrome`] — the input of one shot: a sparse list of fired detector
//!   nodes plus round metadata.
//! * [`DecodeOutcome`] — the output of one shot: the predicted
//!   logical-observable flip plus matched-weight, defect-count, and timing
//!   statistics.
//! * [`SyndromeDecoder`] — a *stateful* decoder instance. `&mut self` lets
//!   implementations keep scratch buffers (matching arenas, cluster arrays,
//!   candidate heaps) alive across shots, so the steady-state
//!   [`SyndromeDecoder::decode_batch`] loop performs no per-shot heap
//!   allocation.
//! * [`DecoderFactory`] — a thread-safe constructor. Expensive
//!   precomputation (the all-pairs-shortest-path table, quantized edge
//!   capacities) lives in the factory behind an [`std::sync::Arc`] and is
//!   paid once per decoding graph; every worker thread then builds its own
//!   cheap instance with private scratch.
//!
//! ```
//! use qec_core::NoiseParams;
//! use qec_core::circuit::DetectorBasis;
//! use qec_decoder::{build_dem, DecoderFactory, DecodingGraph, MwpmFactory, Syndrome};
//! use surface_code::{MemoryExperiment, RotatedCode};
//!
//! let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
//! let detectors = exp.detectors();
//! let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
//! let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
//!
//! let factory = MwpmFactory::new(&graph); // all-pairs shortest paths, once
//! let mut decoder = factory.build();      // per-thread instance, cheap
//! let outcome = decoder.decode_syndrome(&Syndrome::default());
//! assert!(!outcome.flip); // no defects, no correction
//! assert_eq!(outcome.defects, 0);
//! ```

/// The sparse syndrome of one shot: fired detector nodes of one decoding
/// graph, an optional erasure set, plus round metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Syndrome {
    /// Fired detector nodes, as decoding-graph node ids (see
    /// [`crate::DecodingGraph::defects_from_events_into`]).
    pub defects: Vec<usize>,
    /// Syndrome-extraction rounds the shot spans (0 when unknown; carried as
    /// metadata for streaming/windowed backends, not consumed by the
    /// matching decoders).
    pub rounds: usize,
    /// Erasure set: decoding-graph **edge indices** whose locations a
    /// leakage-detection policy flagged as leaked during this shot (see
    /// [`crate::DecodingGraph::erasure_edges_for`]). The decoders treat
    /// these edges as near-free via a [`crate::WeightOverlay`]; an empty set
    /// decodes bit-identically to the erasure-unaware path.
    pub erasures: Vec<usize>,
}

impl Syndrome {
    /// Starts a [`SyndromeBuilder`] from a defect node list. The builder is
    /// the one constructor that composes every piece of metadata — round
    /// count and erasure set — in a single expression:
    ///
    /// ```
    /// use qec_decoder::Syndrome;
    ///
    /// let s = Syndrome::build(vec![2, 7]).rounds(11).erasures(vec![4]).finish();
    /// assert_eq!(s.rounds, 11);
    /// assert_eq!(s.erasures, vec![4]);
    /// ```
    pub fn build(defects: Vec<usize>) -> SyndromeBuilder {
        SyndromeBuilder {
            syndrome: Syndrome {
                defects,
                rounds: 0,
                erasures: Vec::new(),
            },
        }
    }

    /// A syndrome from a defect node list (rounds unknown, no erasures).
    /// Thin wrapper over [`Syndrome::build`].
    pub fn new(defects: Vec<usize>) -> Syndrome {
        Syndrome::build(defects).finish()
    }

    /// A syndrome with round metadata (no erasures). Thin wrapper over
    /// [`Syndrome::build`].
    pub fn with_rounds(defects: Vec<usize>, rounds: usize) -> Syndrome {
        Syndrome::build(defects).rounds(rounds).finish()
    }

    /// A syndrome carrying an erasure set (decoding-graph edge indices
    /// flagged by leakage detection). Thin wrapper over [`Syndrome::build`].
    pub fn with_erasures(defects: Vec<usize>, erasures: Vec<usize>) -> Syndrome {
        Syndrome::build(defects).erasures(erasures).finish()
    }

    /// Number of defects.
    pub fn len(&self) -> usize {
        self.defects.len()
    }

    /// Whether no detector fired.
    pub fn is_empty(&self) -> bool {
        self.defects.is_empty()
    }

    /// Clears the defect and erasure lists, keeping their allocations
    /// (hot-loop reuse). `rounds` is retained.
    pub fn clear(&mut self) {
        self.defects.clear();
        self.erasures.clear();
    }
}

/// Builder for [`Syndrome`], started via [`Syndrome::build`]. Unlike the
/// legacy `with_rounds` / `with_erasures` constructors (which cannot be
/// combined), the builder composes all metadata freely.
#[derive(Debug, Clone, Default)]
pub struct SyndromeBuilder {
    syndrome: Syndrome,
}

impl SyndromeBuilder {
    /// Sets the number of syndrome-extraction rounds the shot spans.
    pub fn rounds(mut self, rounds: usize) -> SyndromeBuilder {
        self.syndrome.rounds = rounds;
        self
    }

    /// Sets the erasure set (decoding-graph edge indices flagged by leakage
    /// detection).
    pub fn erasures(mut self, erasures: Vec<usize>) -> SyndromeBuilder {
        self.syndrome.erasures = erasures;
        self
    }

    /// Finishes the build.
    pub fn finish(self) -> Syndrome {
        self.syndrome
    }
}

impl From<SyndromeBuilder> for Syndrome {
    fn from(builder: SyndromeBuilder) -> Syndrome {
        builder.finish()
    }
}

/// The decoded result of one shot.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DecodeOutcome {
    /// Predicted logical-observable flip.
    pub flip: bool,
    /// Total matched weight of the correction: the sum of shortest-path
    /// distances of all matched pairs (matching decoders) or of the peeled
    /// correction edges (union-find). 0 for an empty syndrome.
    pub weight: f64,
    /// Number of defects that were decoded.
    pub defects: usize,
    /// Wall-clock decode time of this shot in nanoseconds.
    pub nanos: u64,
}

/// A stateful decoder instance: owns reusable scratch, decodes one
/// [`Syndrome`] at a time or a whole batch.
///
/// Instances are *not* shared across threads — build one per worker via a
/// [`DecoderFactory`]. `&mut self` is what allows scratch reuse: the
/// steady-state batch loop performs no per-shot heap allocation.
pub trait SyndromeDecoder {
    /// Decodes one syndrome.
    fn decode_syndrome(&mut self, syndrome: &Syndrome) -> DecodeOutcome;

    /// Decodes one syndrome and additionally emits the correction as
    /// decoding-graph **edge indices** into `correction` (cleared first,
    /// allocation reused; an edge may appear more than once — occurrences
    /// XOR). The emitted edge set's observable-flip XOR always equals the
    /// returned [`DecodeOutcome::flip`]; this is what lets the
    /// sliding-window adapter ([`crate::window::WindowedDecoder`]) commit a
    /// correction region by region.
    ///
    /// All in-repo decoders implement this; the default is for external
    /// implementations that have no edge-level correction and panics when a
    /// windowed pipeline requires one.
    fn decode_with_correction(
        &mut self,
        syndrome: &Syndrome,
        correction: &mut Vec<usize>,
    ) -> DecodeOutcome {
        let _ = syndrome;
        let _ = correction;
        unimplemented!(
            "{}: decode_with_correction not supported (required for windowed decoding)",
            self.name()
        )
    }

    /// Tier-1 fast path: decodes a 1–2 defect, erasure-free syndrome in
    /// closed form, bit-identically to the full decoder (flip, f64 weight
    /// bits, and — when `correction` is given — the exact correction-edge
    /// sequence), or returns `None` to defer to the full path.
    ///
    /// Implementations must return `None` whenever they cannot *guarantee*
    /// bit-identity (ambiguous optimal matchings, order-dependent
    /// corrections, out-of-scope syndromes: 0 or ≥ 3 defects, any
    /// erasures). The default always defers, which is correct for any
    /// backend; see [`crate::predecode`] for the tier dispatcher.
    fn decode_tier1(
        &mut self,
        syndrome: &Syndrome,
        correction: Option<&mut Vec<usize>>,
    ) -> Option<DecodeOutcome> {
        let _ = (syndrome, correction);
        None
    }

    /// Decodes a batch of syndromes into `out` (cleared first, allocation
    /// reused). The default implementation loops over
    /// [`SyndromeDecoder::decode_syndrome`]; backends with real batch
    /// parallelism (fusion, streaming) can override.
    fn decode_batch(&mut self, syndromes: &[Syndrome], out: &mut Vec<DecodeOutcome>) {
        out.clear();
        out.reserve(syndromes.len());
        for syndrome in syndromes {
            out.push(self.decode_syndrome(syndrome));
        }
    }

    /// Human-readable decoder name (for experiment output).
    fn name(&self) -> &'static str;
}

/// Thread-safe decoder constructor: owns the expensive per-graph
/// precomputation (shared via [`std::sync::Arc`]) and stamps out cheap
/// per-thread [`SyndromeDecoder`] instances.
pub trait DecoderFactory: Send + Sync {
    /// Builds a fresh decoder instance with private scratch buffers. The
    /// instance borrows the factory's shared precomputation.
    fn build(&self) -> Box<dyn SyndromeDecoder + '_>;

    /// Name of the decoders this factory builds.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountingDecoder {
        calls: usize,
    }

    impl SyndromeDecoder for CountingDecoder {
        fn decode_syndrome(&mut self, syndrome: &Syndrome) -> DecodeOutcome {
            self.calls += 1;
            DecodeOutcome {
                flip: syndrome.len() % 2 == 1,
                weight: syndrome.len() as f64,
                defects: syndrome.len(),
                nanos: 0,
            }
        }

        fn name(&self) -> &'static str {
            "counting"
        }
    }

    #[test]
    fn syndrome_basics() {
        let mut s = Syndrome::with_rounds(vec![3, 7], 11);
        assert_eq!(s.len(), 2);
        assert_eq!(s.rounds, 11);
        assert!(!s.is_empty());
        assert!(s.erasures.is_empty());
        s.erasures.push(5);
        let cap = s.defects.capacity();
        let ecap = s.erasures.capacity();
        s.clear();
        assert!(s.is_empty());
        assert!(s.erasures.is_empty(), "clear drops the erasure set");
        assert_eq!(s.defects.capacity(), cap, "clear keeps the allocation");
        assert_eq!(s.erasures.capacity(), ecap, "clear keeps the allocation");
        assert!(Syndrome::default().is_empty());
        assert_eq!(Syndrome::new(vec![1]).rounds, 0);
        let e = Syndrome::with_erasures(vec![1], vec![4, 9]);
        assert_eq!(e.erasures, vec![4, 9]);
        assert_eq!(e.rounds, 0);
    }

    #[test]
    fn builder_composes_rounds_and_erasures() {
        // The one thing the legacy constructors cannot do: carry both.
        let s = Syndrome::build(vec![1, 2])
            .rounds(7)
            .erasures(vec![3])
            .finish();
        assert_eq!(
            (s.defects.as_slice(), s.rounds, s.erasures.as_slice()),
            (&[1, 2][..], 7, &[3][..])
        );
        // The legacy constructors are thin wrappers over the builder.
        assert_eq!(Syndrome::new(vec![5]), Syndrome::build(vec![5]).finish());
        assert_eq!(
            Syndrome::with_rounds(vec![5], 3),
            Syndrome::build(vec![5]).rounds(3).finish()
        );
        assert_eq!(
            Syndrome::with_erasures(vec![5], vec![8]),
            Syndrome::build(vec![5]).erasures(vec![8]).finish()
        );
        let via_from: Syndrome = Syndrome::build(vec![9]).rounds(2).into();
        assert_eq!(via_from.rounds, 2);
    }

    #[test]
    fn default_batch_loops_sequentially_and_reuses_out() {
        let mut decoder = CountingDecoder { calls: 0 };
        let batch = [
            Syndrome::new(vec![0]),
            Syndrome::new(vec![1, 2]),
            Syndrome::new(vec![]),
        ];
        let mut out = vec![DecodeOutcome::default(); 64];
        decoder.decode_batch(&batch, &mut out);
        assert_eq!(decoder.calls, 3);
        assert_eq!(out.len(), 3);
        assert_eq!(
            out.iter().map(|o| o.flip).collect::<Vec<_>>(),
            vec![true, false, false]
        );
        assert_eq!(out[1].defects, 2);
    }
}
