//! Weighted decoding graphs for one stabilizer basis.
//!
//! A [`DecodingGraph`] projects a [`crate::DetectorErrorModel`]
//! onto the detectors of a single basis (the paper decodes X and Z
//! independently, §2.2). Mechanisms touching one detector become boundary
//! edges, mechanisms touching two become regular edges, and rarer
//! many-detector mechanisms (e.g. `X⊗X` components of two-qubit depolarizing
//! channels) are decomposed onto existing elementary edges, matching the
//! standard Stim/PyMatching `decompose_errors` behaviour.

use crate::dem::{combine_probability, DetectorErrorModel};
use crate::weight::{snap_weight, validate_edge_weight};
use qec_core::circuit::DetectorBasis;
use qec_core::DetectorInfo;
use std::collections::HashMap;

/// One edge of the decoding graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphEdge {
    /// First endpoint (graph node id).
    pub a: usize,
    /// Second endpoint; equal to [`DecodingGraph::boundary`] for boundary
    /// edges.
    pub b: usize,
    /// Total mechanism probability on this edge.
    pub probability: f64,
    /// Matching weight `ln((1−p)/p)` (clamped to a small positive floor).
    pub weight: f64,
    /// Whether traversing the edge flips the logical observable.
    pub flips_observable: bool,
}

/// A matchable decoding graph over the detectors of one basis.
///
/// # Example
///
/// ```
/// use qec_core::NoiseParams;
/// use qec_core::circuit::DetectorBasis;
/// use qec_decoder::{build_dem, DecodingGraph};
/// use surface_code::{MemoryExperiment, RotatedCode};
///
/// let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
/// let detectors = exp.detectors();
/// let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
/// let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
/// assert!(graph.num_nodes() > 0);
/// assert!(graph.edges().len() > graph.num_nodes() / 2);
/// ```
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    num_nodes: usize,
    edges: Vec<GraphEdge>,
    /// node -> incident edge indices (boundary node included, last slot).
    adjacency: Vec<Vec<usize>>,
    /// graph node -> global detector index.
    node_to_detector: Vec<usize>,
    /// global detector index -> graph node.
    detector_to_node: Vec<Option<usize>>,
    /// Mechanisms that flip the observable while firing no detector of this
    /// basis. Zero when the graph's basis matches the observable's detecting
    /// basis (otherwise a single fault could cause an invisible logical
    /// error — a code-distance violation).
    undetectable_observable_flips: usize,
    /// Per source mechanism (indexed like `DetectorErrorModel::mechanisms`):
    /// the edge indices its projection landed on (one for elementary
    /// mechanisms, several for decomposed hyperedges, none when invisible to
    /// this basis). Together with `ErrorMechanism::sources` this maps fault
    /// provenance to graph edges — the basis of exact heralded-erasure
    /// lookups.
    mechanism_edges: Vec<Vec<usize>>,
    /// Per node: the syndrome-extraction round of its detector (the final
    /// data-measurement detectors carry round = number of rounds). This is
    /// the round index the sliding-window machinery partitions on.
    node_round: Vec<usize>,
}

impl DecodingGraph {
    /// Builds the graph for `basis` from a detector error model.
    pub fn from_dem(
        dem: &DetectorErrorModel,
        detectors: &[DetectorInfo],
        basis: DetectorBasis,
    ) -> DecodingGraph {
        assert_eq!(dem.num_detectors, detectors.len());
        let mut node_to_detector = Vec::new();
        let mut detector_to_node = vec![None; detectors.len()];
        for (idx, det) in detectors.iter().enumerate() {
            if det.basis == basis {
                detector_to_node[idx] = Some(node_to_detector.len());
                node_to_detector.push(idx);
            }
        }
        let num_nodes = node_to_detector.len();
        let node_round: Vec<usize> = node_to_detector
            .iter()
            .map(|&det| detectors[det].round)
            .collect();
        let boundary = num_nodes;

        // First pass: project every mechanism; collect elementary (≤2 node)
        // ones directly, defer larger ones for decomposition. Every
        // mechanism's landing keys are recorded for the provenance map.
        let mut edge_map: HashMap<(usize, usize), (f64, bool)> = HashMap::new();
        let mut deferred: Vec<(usize, Vec<usize>, bool, f64)> = Vec::new();
        let mut mechanism_keys: Vec<Vec<(usize, usize)>> = vec![Vec::new(); dem.mechanisms.len()];
        let mut undetectable_observable_flips = 0;
        for (mi, mech) in dem.mechanisms.iter().enumerate() {
            let nodes: Vec<usize> = mech
                .detectors
                .iter()
                .filter_map(|&d| detector_to_node[d])
                .collect();
            match nodes.len() {
                0 => {
                    // Invisible to this basis (e.g. a Z error for the Z
                    // graph). A mechanism that flips the observable while
                    // firing no detector of the observable's detecting basis
                    // would be a distance-0 error; surface-code circuits
                    // never produce one for the matching basis (asserted in
                    // tests via `undetectable_observable_flips`).
                    if mech.flips_observable {
                        undetectable_observable_flips += 1;
                    }
                }
                1 => {
                    let key = (nodes[0], boundary);
                    merge_edge(&mut edge_map, key, mech.probability, mech.flips_observable);
                    mechanism_keys[mi].push(key);
                }
                2 => {
                    let key = ordered(nodes[0], nodes[1]);
                    merge_edge(&mut edge_map, key, mech.probability, mech.flips_observable);
                    mechanism_keys[mi].push(key);
                }
                _ => deferred.push((mi, nodes, mech.flips_observable, mech.probability)),
            }
        }

        // Second pass: decompose hyperedges into pairs of existing elementary
        // edges whose observable parities XOR to the mechanism's.
        for (mi, mut nodes, obs, p) in deferred {
            nodes.sort_unstable();
            let parts = decompose(&nodes, obs, boundary, &edge_map);
            for (key, part_obs) in parts {
                merge_edge(&mut edge_map, key, p, part_obs);
                mechanism_keys[mi].push(key);
            }
        }

        let mut edges: Vec<GraphEdge> = edge_map
            .into_iter()
            .map(|((a, b), (probability, flips_observable))| {
                let p = probability.clamp(1e-12, 0.5 - 1e-9);
                GraphEdge {
                    a,
                    b,
                    probability,
                    // Snapped to the shared integer-quantization grid so the
                    // dense (scaled f64 path sums) and sparse (summed scaled
                    // edges) blossom backends optimize the exact same metric.
                    weight: snap_weight(((1.0 - p) / p).ln().max(1e-4)),
                    flips_observable,
                }
            })
            .collect();
        edges.sort_by_key(|x| (x.a, x.b));
        for (i, e) in edges.iter().enumerate() {
            validate_edge_weight(i, e.weight);
        }

        let mut adjacency = vec![Vec::new(); num_nodes + 1];
        let mut key_to_edge: HashMap<(usize, usize), usize> = HashMap::new();
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.a].push(i);
            adjacency[e.b].push(i);
            key_to_edge.insert((e.a, e.b), i);
        }
        let mechanism_edges = mechanism_keys
            .into_iter()
            .map(|keys| {
                let mut out: Vec<usize> = keys.into_iter().map(|key| key_to_edge[&key]).collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        DecodingGraph {
            num_nodes,
            edges,
            adjacency,
            node_to_detector,
            detector_to_node,
            undetectable_observable_flips,
            mechanism_edges,
            node_round,
        }
    }

    /// Builds a bare graph from pre-restricted parts (the sliding-window
    /// subgraph constructor, see [`crate::window::WindowGraph`]): nodes are
    /// locally numbered, `edges` reference local ids (boundary = `num_nodes`),
    /// and `node_round` carries each node's round *relative to the window
    /// base*. The detector mappings degenerate to the identity and the
    /// provenance map is empty — window graphs are decode-only views.
    pub(crate) fn from_window_parts(
        num_nodes: usize,
        edges: Vec<GraphEdge>,
        node_round: Vec<usize>,
    ) -> DecodingGraph {
        assert_eq!(node_round.len(), num_nodes);
        let mut adjacency = vec![Vec::new(); num_nodes + 1];
        for (i, e) in edges.iter().enumerate() {
            debug_assert!(e.a < num_nodes && e.b <= num_nodes && e.a < e.b);
            validate_edge_weight(i, e.weight);
            adjacency[e.a].push(i);
            adjacency[e.b].push(i);
        }
        DecodingGraph {
            num_nodes,
            edges,
            adjacency,
            node_to_detector: (0..num_nodes).collect(),
            detector_to_node: (0..num_nodes).map(Some).collect(),
            undetectable_observable_flips: 0,
            mechanism_edges: Vec::new(),
            node_round,
        }
    }

    /// Number of mechanisms that flip the observable without firing any
    /// detector of this basis. Must be zero when the graph's basis is the
    /// observable's detecting basis (checked by the test-suite; a non-zero
    /// value on the matching basis would mean an effective distance of 0).
    pub fn undetectable_observable_flips(&self) -> usize {
        self.undetectable_observable_flips
    }

    /// Number of detector nodes (the virtual boundary node is
    /// [`DecodingGraph::boundary`], one past the end).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The virtual boundary node id.
    pub fn boundary(&self) -> usize {
        self.num_nodes
    }

    /// All edges.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Edge indices incident to `node` (boundary allowed).
    pub fn incident(&self, node: usize) -> &[usize] {
        &self.adjacency[node]
    }

    /// Maps a graph node back to its global detector index.
    pub fn detector_of_node(&self, node: usize) -> usize {
        self.node_to_detector[node]
    }

    /// The syndrome-extraction round of `node`'s detector (the final
    /// data-measurement detectors carry round = number of rounds). Window
    /// graphs report rounds relative to their own base round.
    pub fn node_round(&self, node: usize) -> usize {
        self.node_round[node]
    }

    /// The largest node round in the graph (= the experiment's round count
    /// for a full memory-experiment graph, because the final transversal
    /// detectors carry that round value).
    pub fn max_round(&self) -> usize {
        self.node_round.iter().copied().max().unwrap_or(0)
    }

    /// All node rounds, indexed by node id (for windowing's range queries).
    pub(crate) fn node_rounds(&self) -> &[usize] {
        &self.node_round
    }

    /// Maps a global detector index to its graph node, if it belongs to this
    /// basis.
    pub fn node_of_detector(&self, detector: usize) -> Option<usize> {
        self.detector_to_node[detector]
    }

    /// The decoding-graph edge indices a leakage-detection flag on
    /// `detector` could erase: every edge incident to the detector's node in
    /// this graph. Empty when the detector belongs to the other basis.
    ///
    /// This is the *generic* (maximal) lookup; the runtime translates
    /// leakage flags into [`crate::Syndrome::erasures`] through the exact
    /// provenance map instead ([`DecodingGraph::erasure_edges_for_mechanism`]
    /// over the mechanisms whose fault site touched the flagged qubit) —
    /// erasing a flagged qubit's whole detector star creates short erased
    /// cycles whose observable parity is ambiguous, while the provenance
    /// edges are one-to-one with the heralded error mechanisms.
    pub fn erasure_edges_for(&self, detector: usize) -> &[usize] {
        match self.detector_to_node[detector] {
            Some(node) => self.incident(node),
            None => &[],
        }
    }

    /// The edge indices mechanism `mech` (an index into the source
    /// [`crate::DetectorErrorModel::mechanisms`]) landed on in this graph:
    /// one edge for an elementary mechanism, several for a decomposed
    /// hyperedge, none when the mechanism is invisible to this basis.
    /// Combined with [`crate::ErrorMechanism::sources`], this translates
    /// "this circuit location was faulty" (e.g. heralded leakage) into the
    /// exact erased-edge set.
    pub fn erasure_edges_for_mechanism(&self, mech: usize) -> &[usize] {
        &self.mechanism_edges[mech]
    }

    /// Extracts the defect node list from a global detector-event bitmap.
    pub fn defects_from_events(&self, events: &[bool]) -> Vec<usize> {
        let mut out = Vec::new();
        self.defects_from_events_into(events, &mut out);
        out
    }

    /// Extracts the defect node list into `out`, clearing it first and
    /// reusing its allocation (the per-shot hot path of the runtime).
    pub fn defects_from_events_into(&self, events: &[bool], out: &mut Vec<usize>) {
        out.clear();
        out.extend(
            self.node_to_detector
                .iter()
                .enumerate()
                .filter(|&(_, &det)| events[det])
                .map(|(node, _)| node),
        );
    }
}

fn ordered(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

fn merge_edge(
    map: &mut HashMap<(usize, usize), (f64, bool)>,
    key: (usize, usize),
    p: f64,
    obs: bool,
) {
    let entry = map.entry(key).or_insert((0.0, obs));
    entry.0 = combine_probability(entry.0, p);
    // Parallel mechanisms with conflicting observable parity are dominated by
    // the heavier one; in surface-code DEMs the parity always agrees, which
    // the graph tests assert.
    entry.1 = obs || entry.1;
}

/// Splits a >2-node mechanism into pairs, preferring pairs that already exist
/// as elementary edges and whose observable parities XOR to `obs`.
fn decompose(
    nodes: &[usize],
    obs: bool,
    boundary: usize,
    edges: &HashMap<(usize, usize), (f64, bool)>,
) -> Vec<((usize, usize), bool)> {
    // Try exact recursive pairing onto existing edges.
    fn recurse(
        remaining: &[usize],
        edges: &HashMap<(usize, usize), (f64, bool)>,
        acc: &mut Vec<(usize, usize)>,
    ) -> bool {
        if remaining.is_empty() {
            return true;
        }
        let first = remaining[0];
        for i in 1..remaining.len() {
            let partner = remaining[i];
            let key = ordered(first, partner);
            if edges.contains_key(&key) {
                let rest: Vec<usize> = remaining
                    .iter()
                    .copied()
                    .filter(|&n| n != first && n != partner)
                    .collect();
                acc.push(key);
                if recurse(&rest, edges, acc) {
                    return true;
                }
                acc.pop();
            }
        }
        false
    }

    let mut acc = Vec::new();
    let exact = recurse(nodes, edges, &mut acc);
    if !exact {
        // Fallback: pair consecutive nodes (they are sorted, hence typically
        // adjacent in space-time); odd leftover goes to the boundary.
        acc.clear();
        let mut it = nodes.chunks_exact(2);
        for pair in &mut it {
            acc.push(ordered(pair[0], pair[1]));
        }
        if let [last] = it.remainder() {
            acc.push((*last, boundary));
        }
    }
    // Distribute the observable parity: give it to the first component whose
    // existing edge carries it, else to the first component.
    let mut out: Vec<((usize, usize), bool)> = acc.iter().map(|&k| (k, false)).collect();
    if obs {
        let idx = acc
            .iter()
            .position(|k| edges.get(k).map(|&(_, o)| o).unwrap_or(false))
            .unwrap_or(0);
        out[idx].1 = true;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    fn graph_for(d: usize, rounds: usize, basis: DetectorBasis) -> (DecodingGraph, usize) {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let g = DecodingGraph::from_dem(&dem, &detectors, basis);
        (g, detectors.len())
    }

    #[test]
    fn z_graph_covers_all_z_detectors() {
        let (g, _) = graph_for(3, 3, DetectorBasis::Z);
        // d=3, rounds=3: 4 + 2·4 + 4 = 16 Z detectors.
        assert_eq!(g.num_nodes(), 16);
        // Every node must be matchable: at least one incident edge.
        for node in 0..g.num_nodes() {
            assert!(!g.incident(node).is_empty(), "isolated node {node}");
        }
    }

    #[test]
    fn observable_flips_always_detected_in_matching_basis() {
        // A memory-Z observable is flipped only by mechanisms with Z-basis
        // detectors; the Z graph must see all of them.
        let (g, _) = graph_for(3, 3, DetectorBasis::Z);
        assert_eq!(g.undetectable_observable_flips(), 0);
    }

    #[test]
    fn node_detector_mapping_round_trips() {
        let (g, n_det) = graph_for(3, 2, DetectorBasis::Z);
        for node in 0..g.num_nodes() {
            let det = g.detector_of_node(node);
            assert!(det < n_det);
            assert_eq!(g.node_of_detector(det), Some(node));
        }
    }

    #[test]
    fn x_graph_is_disjoint_from_z_graph() {
        let (gz, n_det) = graph_for(3, 3, DetectorBasis::Z);
        let (gx, _) = graph_for(3, 3, DetectorBasis::X);
        let z_dets: std::collections::HashSet<_> = (0..gz.num_nodes())
            .map(|n| gz.detector_of_node(n))
            .collect();
        let x_dets: std::collections::HashSet<_> = (0..gx.num_nodes())
            .map(|n| gx.detector_of_node(n))
            .collect();
        assert!(z_dets.is_disjoint(&x_dets));
        assert_eq!(z_dets.len() + x_dets.len(), n_det);
    }

    #[test]
    fn weights_are_positive_and_probabilities_sane() {
        let (g, _) = graph_for(3, 3, DetectorBasis::Z);
        for e in g.edges() {
            assert!(e.weight > 0.0);
            assert!(e.probability > 0.0 && e.probability < 0.5);
        }
    }

    #[test]
    fn some_boundary_edges_flip_observable() {
        // A data X error next to the logical-Z row must produce a
        // boundary-connected, observable-flipping edge.
        let (g, _) = graph_for(3, 2, DetectorBasis::Z);
        let boundary = g.boundary();
        assert!(g
            .edges()
            .iter()
            .any(|e| e.b == boundary && e.flips_observable));
        // And there must be bulk edges that do not flip it.
        assert!(g
            .edges()
            .iter()
            .any(|e| e.b != boundary && !e.flips_observable));
    }

    #[test]
    fn defect_extraction_matches_events() {
        let (g, n_det) = graph_for(3, 2, DetectorBasis::Z);
        let mut events = vec![false; n_det];
        let det0 = g.detector_of_node(0);
        let det3 = g.detector_of_node(3);
        events[det0] = true;
        events[det3] = true;
        assert_eq!(g.defects_from_events(&events), vec![0, 3]);
    }

    #[test]
    fn erasure_edges_for_is_the_detector_star() {
        let (g, n_det) = graph_for(3, 3, DetectorBasis::Z);
        for det in 0..n_det {
            match g.node_of_detector(det) {
                Some(node) => assert_eq!(g.erasure_edges_for(det), g.incident(node)),
                None => assert!(g.erasure_edges_for(det).is_empty(), "other basis"),
            }
        }
    }

    #[test]
    fn mechanism_edges_cover_every_visible_mechanism() {
        let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 3);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let g = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        let mut covered = 0;
        for (mi, mech) in dem.mechanisms.iter().enumerate() {
            let edges = g.erasure_edges_for_mechanism(mi);
            let visible = mech
                .detectors
                .iter()
                .any(|&d| g.node_of_detector(d).is_some());
            assert_eq!(
                edges.is_empty(),
                !visible,
                "mechanism {mi} visibility/edge mismatch"
            );
            for &ei in edges {
                assert!(ei < g.edges().len());
            }
            if visible {
                covered += 1;
                // Elementary two-detector mechanisms land on the edge between
                // their own nodes.
                let nodes: Vec<usize> = mech
                    .detectors
                    .iter()
                    .filter_map(|&d| g.node_of_detector(d))
                    .collect();
                if nodes.len() == 2 && edges.len() == 1 {
                    let e = &g.edges()[edges[0]];
                    let key = super::ordered(nodes[0], nodes[1]);
                    assert_eq!((e.a, e.b), key);
                }
            }
        }
        assert!(covered > 100, "too few visible mechanisms ({covered})");
    }

    #[test]
    fn node_rounds_are_round_major_and_cover_the_span() {
        // The sliding-window machinery relies on nodes being numbered
        // round-major (each window is a contiguous node range) with a uniform
        // per-round node count.
        for basis in [DetectorBasis::Z, DetectorBasis::X] {
            let (g, _) = graph_for(3, 4, basis);
            let rounds: Vec<usize> = (0..g.num_nodes()).map(|n| g.node_round(n)).collect();
            assert!(rounds.windows(2).all(|w| w[0] <= w[1]), "round-major order");
            if basis == DetectorBasis::Z {
                assert_eq!(g.max_round(), 4, "final detectors carry round = R");
                let per_round = g.num_nodes() / (g.max_round() + 1);
                for r in 0..=g.max_round() {
                    assert_eq!(
                        rounds.iter().filter(|&&x| x == r).count(),
                        per_round,
                        "uniform node count at round {r}"
                    );
                }
            }
        }
    }

    #[test]
    fn graph_is_connected_through_boundary() {
        // Union-find over edges (including boundary) must yield a single
        // component: otherwise some defects could never be matched.
        let (g, _) = graph_for(5, 3, DetectorBasis::Z);
        let n = g.num_nodes() + 1;
        let mut parent: Vec<usize> = (0..n).collect();
        fn find(p: &mut Vec<usize>, x: usize) -> usize {
            if p[x] != x {
                let r = find(p, p[x]);
                p[x] = r;
            }
            p[x]
        }
        for e in g.edges() {
            let (ra, rb) = (find(&mut parent, e.a), find(&mut parent, e.b));
            parent[ra] = rb;
        }
        let root = find(&mut parent, 0);
        for v in 0..n {
            assert_eq!(find(&mut parent, v), root, "node {v} disconnected");
        }
    }
}
