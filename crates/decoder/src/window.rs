//! Sliding-window streaming decoding: bounded-memory, round-incremental
//! decoding for long-memory experiments.
//!
//! Whole-experiment decoding builds one [`DecodingGraph`] over all `R`
//! rounds; MWPM's all-pairs table is then O((d²·R)²) in space, which walls
//! off exactly the regime where leakage accumulates and ERASER matters most
//! (R ≫ d). Sliding-window decoding — the architecture behind fusion-blossom
//! and every real-time decoder — caps both the working set and the latency
//! at O(window), independent of R:
//!
//! ```text
//!   rounds   0 ........ s ........ 2s ....... 3s ...............R
//!   window 0 [ commit  |      buffer       ]
//!   window 1            [ commit  |      buffer       ]
//!   window 2                       [ commit  |  buffer (final: commit) ]
//! ```
//!
//! Each window spans `window` rounds and advances by `stride` rounds. After
//! decoding a window, only the correction edges touching the **commit
//! region** (the first `stride` rounds) become final; the **buffer region**
//! (the remaining `window − stride ≥ d` rounds) is re-decoded by the next
//! window with fresh context. Where a committed correction path crosses the
//! commit/buffer boundary, the crossing node is re-injected as an
//! *artificial defect* for the next window — the overlapping-recovery
//! bookkeeping that keeps the global correction's defect algebra exact. The
//! final window commits everything.
//!
//! Three pieces implement this:
//!
//! * [`WindowGraph`] — a round-indexed partition view of a [`DecodingGraph`]:
//!   the nodes of rounds `[lo, hi]` with local numbering, spatial-boundary
//!   edges kept, and time-crossing edges dropped (the buffer overlap is what
//!   makes that sound). Bulk windows are time-translation invariant, so a
//!   whole experiment has only a handful of distinct window *shapes*.
//! * [`WindowPlan`] — the per-graph precomputation (the analogue of a
//!   [`crate::DecoderFactory`]): all window positions, deduplicated shapes,
//!   and one `ShortestPaths` / `UnionFindCapacities` table **per shape** —
//!   killing the O(R²) APSP. Thread-safe; build once, then stamp out one
//!   [`WindowedDecoder`] per worker thread via [`WindowPlan::streaming`].
//! * [`StreamingDecoder`] / [`WindowedDecoder`] — the round-incremental
//!   interface (`begin_shot` / `push_round` / `finish`) and its generic
//!   implementation over any [`SyndromeDecoder`] that can report its
//!   correction as edges ([`SyndromeDecoder::decode_with_correction`]), so
//!   MWPM, union-find, and greedy all gain streaming for free.
//!
//! A window covering all rounds decodes **bit-identically** to the
//! monolithic path (asserted by `tests/windowed.rs`): the commit machinery
//! works from correction edges whose observable-flip XOR is exactly the
//! monolithic prediction.

use crate::api::{DecodeOutcome, Syndrome, SyndromeDecoder};
use crate::graph::{DecodingGraph, GraphEdge};
use crate::greedy::GreedyBatchDecoder;
use crate::mwpm::{MwpmBatchDecoder, ShortestPaths};
use crate::predecode::{tier0_applies, tier1_applies, TierCounters};
use crate::sparse::{SparseIndex, SparseMwpmDecoder};
use crate::unionfind::{UnionFindBatchDecoder, UnionFindCapacities};
use std::sync::Arc;
use std::time::Instant;

/// Which per-window decoder a [`WindowPlan`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowBackend {
    /// Exact blossom MWPM per window (the default — windows are small).
    Mwpm,
    /// Exact sparse blossom MWPM per window (same optimal weight as
    /// [`WindowBackend::Mwpm`], O(window) precomputation per shape).
    SparseMwpm,
    /// Weighted union-find per window.
    UnionFind,
    /// Greedy nearest-first per window.
    Greedy,
}

impl WindowBackend {
    /// Stable display name (matches the monolithic decoder names).
    pub fn name(&self) -> &'static str {
        match self {
            WindowBackend::Mwpm => "mwpm",
            WindowBackend::SparseMwpm => "sparse-mwpm",
            WindowBackend::UnionFind => "union-find",
            WindowBackend::Greedy => "greedy",
        }
    }
}

/// A round-indexed partition view of a [`DecodingGraph`]: the subgraph of
/// nodes whose detector round lies in `[lo, hi]`, locally numbered, with the
/// spatial boundary preserved and time-crossing edges dropped.
///
/// Relies on the parent graph's nodes being numbered round-major (true for
/// every memory-experiment graph; asserted by [`WindowPlan::new`]), which
/// makes each window a contiguous global node range.
#[derive(Debug, Clone)]
pub struct WindowGraph {
    graph: DecodingGraph,
    lo: usize,
    hi: usize,
    node_start: usize,
    /// Global edge index per local edge (ascending — filtering the global
    /// edge list preserves its (a, b) sort order).
    edge_globals: Vec<u32>,
}

impl WindowGraph {
    /// Builds the window view for rounds `[lo, hi]` of `parent`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`, if the range is outside the parent's rounds, or
    /// if the parent is not round-major.
    pub fn build(parent: &DecodingGraph, lo: usize, hi: usize) -> WindowGraph {
        assert!(
            lo <= hi && hi <= parent.max_round(),
            "bad window [{lo}, {hi}]"
        );
        let rounds = parent.node_rounds();
        let node_start = rounds.partition_point(|&r| r < lo);
        let node_end = rounds.partition_point(|&r| r <= hi);
        let n = node_end - node_start;
        let parent_boundary = parent.boundary();
        let all = parent.edges();
        let e_lo = all.partition_point(|e| e.a < node_start);
        let e_hi = all.partition_point(|e| e.a < node_end);
        let mut edges = Vec::with_capacity(e_hi - e_lo);
        let mut edge_globals = Vec::with_capacity(e_hi - e_lo);
        for (ei, e) in all.iter().enumerate().take(e_hi).skip(e_lo) {
            let b = if e.b == parent_boundary {
                n // spatial boundary maps to the window's own boundary
            } else if e.b < node_end {
                e.b - node_start
            } else {
                continue; // time-crossing edge: the buffer overlap covers it
            };
            edges.push(GraphEdge {
                a: e.a - node_start,
                b,
                probability: e.probability,
                weight: e.weight,
                flips_observable: e.flips_observable,
            });
            edge_globals.push(ei as u32);
        }
        let node_round = (node_start..node_end)
            .map(|v| parent.node_round(v) - lo)
            .collect();
        WindowGraph {
            graph: DecodingGraph::from_window_parts(n, edges, node_round),
            lo,
            hi,
            node_start,
            edge_globals,
        }
    }

    /// The restricted decoding graph (local numbering; `node_round` is
    /// relative to [`WindowGraph::lo`]).
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    /// First round covered (absolute).
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// Last round covered (absolute, inclusive).
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Global node id of local node 0.
    pub fn node_start(&self) -> usize {
        self.node_start
    }

    /// Number of window nodes.
    pub fn node_count(&self) -> usize {
        self.graph.num_nodes()
    }

    /// Maps a global node id into the window, if covered.
    pub fn local_node(&self, global: usize) -> Option<usize> {
        (self.node_start..self.node_start + self.node_count())
            .contains(&global)
            .then(|| global - self.node_start)
    }

    /// Maps a local node id back to the parent graph.
    pub fn global_node(&self, local: usize) -> usize {
        self.node_start + local
    }

    /// Maps a global edge index into the window, if both endpoints are
    /// covered (a time-crossing or out-of-window edge maps to `None`).
    pub fn local_edge(&self, global: usize) -> Option<usize> {
        self.edge_globals.binary_search(&(global as u32)).ok()
    }

    /// Maps a local edge index back to the parent graph.
    pub fn global_edge(&self, local: usize) -> usize {
        self.edge_globals[local] as usize
    }

    /// Whether two windows have the same *shape*: identical local structure
    /// (nodes, rounds, and edges bit-for-bit). Bulk windows of a memory
    /// experiment are time-translation invariant, so this collapses all
    /// interior positions onto one shape.
    pub fn same_shape(&self, other: &WindowGraph) -> bool {
        self.node_count() == other.node_count()
            && self.hi - self.lo == other.hi - other.lo
            && (0..self.node_count()).all(|v| self.graph.node_round(v) == other.graph.node_round(v))
            && self.graph.edges() == other.graph.edges()
    }
}

/// Per-shape shared precomputation, selected by backend.
#[derive(Debug)]
struct ShapeData {
    paths: Option<Arc<ShortestPaths>>,
    capacities: Option<Arc<UnionFindCapacities>>,
    sparse: Option<Arc<SparseIndex>>,
}

/// One window position of the plan.
#[derive(Debug)]
struct Position {
    lo: usize,
    hi: usize,
    /// Commit boundary relative to `lo`: correction edges with an endpoint
    /// below it become final. `usize::MAX` commits everything (final window).
    commit_rel: usize,
    /// Rounds at the front of this window already committed by earlier
    /// positions. Non-zero only for a clamped final window, whose `lo` is
    /// pulled back to keep full width; excluded from the committed-rounds
    /// latency accounting (re-decoding them is legal — corrections are fresh
    /// XOR edges — but they were already counted).
    overlap: usize,
    shape: usize,
    node_start: usize,
    node_count: usize,
    /// Global edge index per local edge (see [`WindowGraph::edge_globals`]).
    edge_globals: Vec<u32>,
}

/// The sliding-window decode plan for one decoding graph: all window
/// positions, the deduplicated window shapes, and one shared precomputation
/// per shape. The windowed analogue of a [`crate::DecoderFactory`]: build
/// once per graph, then stamp out a [`WindowedDecoder`] per worker thread.
#[derive(Debug)]
pub struct WindowPlan {
    shapes: Vec<WindowGraph>,
    shape_data: Vec<ShapeData>,
    positions: Vec<Position>,
    backend: WindowBackend,
    window: usize,
    stride: usize,
    max_round: usize,
}

impl WindowPlan {
    /// Builds the plan: `window` rounds per window, advancing by `stride`
    /// (`buffer = window − stride` rounds are re-decoded; keep it ≥ d). The
    /// per-shape `ShortestPaths` / `UnionFindCapacities` tables are computed
    /// here, once per *shape*, not per position.
    ///
    /// # Panics
    ///
    /// Panics if `stride` is 0 or exceeds `window`, or if the graph is not
    /// round-major.
    pub fn new(
        graph: &DecodingGraph,
        window: usize,
        stride: usize,
        backend: WindowBackend,
    ) -> WindowPlan {
        assert!(
            window >= 1 && stride >= 1 && stride <= window,
            "bad window spec: window {window}, stride {stride}"
        );
        assert!(
            graph.node_rounds().windows(2).all(|w| w[0] <= w[1]),
            "windowed decoding needs a round-major decoding graph"
        );
        let max_round = graph.max_round();
        let span = max_round + 1;
        let mut shapes: Vec<WindowGraph> = Vec::new();
        let mut positions = Vec::new();
        let mut lo = 0;
        loop {
            let last = lo + window >= span;
            // The final position is clamped back to full width: a naive
            // `[lo, max_round]` window can be narrower than `window` (even
            // < d) when `span − lo` is small, silently weakening the buffer
            // guarantee for the last committed rounds. The rounds re-covered
            // by the clamp were already committed — recorded as `overlap` so
            // latency accounting doesn't double-count them.
            let start = if last {
                span.saturating_sub(window).min(lo)
            } else {
                lo
            };
            let hi = if last { max_round } else { lo + window - 1 };
            let wg = WindowGraph::build(graph, start, hi);
            let shape = match shapes.iter().position(|s| s.same_shape(&wg)) {
                Some(i) => i,
                None => {
                    shapes.push(wg.clone());
                    shapes.len() - 1
                }
            };
            positions.push(Position {
                lo: start,
                hi,
                commit_rel: if last { usize::MAX } else { stride },
                overlap: lo - start,
                shape,
                node_start: wg.node_start,
                node_count: wg.node_count(),
                edge_globals: wg.edge_globals,
            });
            if last {
                break;
            }
            lo += stride;
        }
        let shape_data = shapes
            .iter()
            .map(|shape| match backend {
                WindowBackend::Mwpm | WindowBackend::Greedy => {
                    let paths = Arc::new(ShortestPaths::compute(shape.graph()));
                    let b = shape.graph().boundary();
                    // Isolated nodes (no incident edges at all — e.g. every
                    // node of a noiseless experiment's empty DEM) can never
                    // host a defect, so only connected nodes must reach the
                    // boundary for the window slicing to be sound.
                    debug_assert!(
                        (0..shape.graph().num_nodes()).all(|v| {
                            shape.graph().incident(v).is_empty() || paths.distance(v, b).is_finite()
                        }),
                        "window node cut off from the boundary"
                    );
                    ShapeData {
                        paths: Some(paths),
                        capacities: None,
                        sparse: None,
                    }
                }
                WindowBackend::SparseMwpm => ShapeData {
                    paths: None,
                    capacities: None,
                    sparse: Some(Arc::new(SparseIndex::compute(shape.graph()))),
                },
                WindowBackend::UnionFind => ShapeData {
                    paths: None,
                    capacities: Some(Arc::new(UnionFindCapacities::compute(shape.graph()))),
                    sparse: None,
                },
            })
            .collect();
        WindowPlan {
            shapes,
            shape_data,
            positions,
            backend,
            window,
            stride,
            max_round,
        }
    }

    /// Number of window positions over the experiment.
    pub fn num_positions(&self) -> usize {
        self.positions.len()
    }

    /// Number of distinct window shapes (a handful regardless of R, thanks
    /// to time-translation invariance of the bulk rounds).
    pub fn num_shapes(&self) -> usize {
        self.shapes.len()
    }

    /// The configured window length in rounds.
    pub fn window(&self) -> usize {
        self.window
    }

    /// The configured stride in rounds.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The backend decoding each window.
    pub fn backend(&self) -> WindowBackend {
        self.backend
    }

    /// The parent graph's largest round.
    pub fn max_round(&self) -> usize {
        self.max_round
    }

    /// Last round (inclusive, absolute) covered by position `k`. Fusion's
    /// replay machinery slices per-round defect/erasure buffers with this.
    pub(crate) fn position_hi(&self, k: usize) -> usize {
        self.positions[k].hi
    }

    /// Approximate resident bytes of the plan's decode state: per-shape
    /// graphs and APSP/capacity tables plus per-position edge maps. The
    /// number the `longmem` figure reports against the monolithic APSP
    /// footprint; shapes are O(window²) and the position maps O(R·window),
    /// so peak decoder memory stays flat in R.
    pub fn approx_decoder_bytes(&self) -> usize {
        let mut total = 0;
        for (shape, data) in self.shapes.iter().zip(&self.shape_data) {
            total += std::mem::size_of_val(shape.graph().edges());
            total += shape.node_count() * std::mem::size_of::<usize>() * 3;
            // Each backend's table prices itself, so the estimate cannot
            // drift from the tables' real layouts (the sparse backend's
            // estimate did exactly that when it was hand-expanded here).
            if let Some(paths) = &data.paths {
                total += paths.approx_bytes();
            }
            if let Some(capacities) = &data.capacities {
                total += capacities.approx_bytes();
            }
            if let Some(sparse) = &data.sparse {
                total += sparse.approx_bytes();
            }
        }
        for pos in &self.positions {
            total += pos.edge_globals.len() * std::mem::size_of::<u32>();
        }
        total
    }

    /// Builds a streaming decoder over this plan (one per worker thread;
    /// scratch and per-shape inner decoders are private to the instance, the
    /// expensive tables are shared through the plan).
    pub fn streaming(&self) -> WindowedDecoder<'_> {
        let inner: Vec<Box<dyn SyndromeDecoder + Send + '_>> = self
            .shapes
            .iter()
            .zip(&self.shape_data)
            .map(|(shape, data)| -> Box<dyn SyndromeDecoder + Send + '_> {
                match self.backend {
                    WindowBackend::Mwpm => Box::new(MwpmBatchDecoder::with_paths(
                        shape.graph(),
                        Arc::clone(data.paths.as_ref().expect("mwpm shape has paths")),
                    )),
                    WindowBackend::SparseMwpm => Box::new(SparseMwpmDecoder::with_index(
                        shape.graph(),
                        Arc::clone(data.sparse.as_ref().expect("sparse shape has an index")),
                    )),
                    WindowBackend::UnionFind => Box::new(UnionFindBatchDecoder::with_capacities(
                        shape.graph(),
                        Arc::clone(data.capacities.as_ref().expect("uf shape has capacities")),
                    )),
                    WindowBackend::Greedy => Box::new(GreedyBatchDecoder::with_paths(
                        shape.graph(),
                        Arc::clone(data.paths.as_ref().expect("greedy shape has paths")),
                    )),
                }
            })
            .collect();
        WindowedDecoder {
            plan: self,
            inner,
            round_cursor: 0,
            next_position: 0,
            defects: Vec::new(),
            erasures: Vec::new(),
            total_defects: 0,
            flip: false,
            weight: 0.0,
            nanos: 0,
            latencies: Vec::new(),
            local: Syndrome::default(),
            correction: Vec::new(),
            par_stamp: Vec::new(),
            par_val: Vec::new(),
            par_epoch: 0,
            touched: Vec::new(),
            predecode: true,
            counters: TierCounters::default(),
        }
    }
}

/// Round-incremental decoding of one shot: feed defects and erasures as each
/// round completes, read the final logical prediction at the end. The
/// streaming counterpart of [`SyndromeDecoder::decode_syndrome`].
pub trait StreamingDecoder {
    /// Starts a new shot, discarding any previous state.
    fn begin_shot(&mut self);

    /// Feeds one completed round: the round's fired defects (global
    /// decoding-graph node ids, ascending) and any erasure edges discovered
    /// this round (global edge indices). Rounds must arrive in order,
    /// starting at 0.
    fn push_round(&mut self, defects: &[usize], erasures: &[usize]);

    /// Finishes the shot and returns the accumulated outcome (`defects` is
    /// the total pushed defect count; `nanos` the summed window decode time).
    fn finish(&mut self) -> DecodeOutcome;

    /// Human-readable decoder name.
    fn name(&self) -> &'static str;
}

/// The generic sliding-window adapter: buffers pushed rounds, decodes each
/// window position as soon as its last round arrives, commits the correction
/// edges touching the commit region, and re-injects boundary-crossing
/// defects into the next window. Built via [`WindowPlan::streaming`].
pub struct WindowedDecoder<'p> {
    plan: &'p WindowPlan,
    inner: Vec<Box<dyn SyndromeDecoder + Send + 'p>>,
    round_cursor: usize,
    next_position: usize,
    /// Live defect set, as sorted global node ids: not-yet-committed real
    /// defects plus re-injected artificial ones. Always confined to the next
    /// window's rounds — that is the commit invariant.
    defects: Vec<usize>,
    /// Live erasure set (global edge indices; duplicates tolerated). Pruned
    /// as windows retire.
    erasures: Vec<usize>,
    total_defects: usize,
    flip: bool,
    weight: f64,
    nanos: u64,
    /// Per decoded window: (decode nanos, rounds committed).
    latencies: Vec<(u64, u32)>,
    // Reused scratch.
    local: Syndrome,
    correction: Vec<usize>,
    par_stamp: Vec<u32>,
    par_val: Vec<bool>,
    par_epoch: u32,
    touched: Vec<usize>,
    /// Whether the tiered fast path ([`crate::predecode`]) fronts each
    /// window: tier 0 skips empty windows outright, tier 1 resolves 1–2
    /// defect windows in closed form. Bit-identical either way; on by
    /// default.
    predecode: bool,
    /// Per-tier telemetry, accumulated across shots (run-level, not
    /// cleared by [`StreamingDecoder::begin_shot`]).
    counters: TierCounters,
}

impl WindowedDecoder<'_> {
    /// The plan this decoder runs.
    pub fn plan(&self) -> &WindowPlan {
        self.plan
    }

    /// Enables or disables the tiered fast path (default on). Disabling it
    /// restores the pre-tier behavior: every window position runs the full
    /// backend and takes a latency sample.
    pub fn set_predecode(&mut self, on: bool) {
        self.predecode = on;
    }

    /// Whether the tiered fast path is active.
    pub fn predecode(&self) -> bool {
        self.predecode
    }

    /// Per-tier hit/latency telemetry, accumulated across every shot this
    /// instance decoded (all zeros when the predecoder is disabled).
    pub fn tier_counters(&self) -> &TierCounters {
        &self.counters
    }

    /// Per-window decode latency samples of the current shot: `(nanos,
    /// rounds committed)` per decoded window, in order. Cleared by
    /// [`StreamingDecoder::begin_shot`].
    pub fn window_latencies(&self) -> &[(u64, u32)] {
        &self.latencies
    }

    fn toggle(&mut self, v: usize) {
        if self.par_stamp[v] != self.par_epoch {
            self.par_stamp[v] = self.par_epoch;
            self.par_val[v] = false;
            self.touched.push(v);
        }
        self.par_val[v] = !self.par_val[v];
    }

    /// Decodes position `k` against the current live `defects` / `erasures`
    /// state, leaving the carried defect set in `self.defects`, and returns
    /// this position's `(observable flip, committed weight)` partials.
    ///
    /// Shared by the sequential driver ([`Self::decode_position`]) and the
    /// fusion replay path ([`Self::replay_position`]): both fold the partials
    /// in position order, which keeps the non-associative f64 weight
    /// accumulation — and therefore the whole outcome — bit-identical
    /// between the two paths.
    fn decode_position_core(&mut self, k: usize) -> (bool, f64) {
        // Tier 0: nothing fired in the window and nothing was erased — the
        // full path would decode an empty local syndrome to the default
        // outcome and carry nothing, so skip building it entirely. The
        // sequential driver checks this first (to also skip the latency
        // sample); this check covers the fusion replay path.
        if self.predecode && tier0_applies(&self.defects, &self.erasures) {
            self.counters.record(0, 0);
            return (false, 0.0);
        }
        let pos = &self.plan.positions[k];
        let shape = &self.plan.shapes[pos.shape];
        let sgraph = shape.graph();
        let mut flip = false;
        let mut weight = 0.0f64;

        self.local.clear();
        self.local.rounds = pos.hi - pos.lo + 1;
        for &g in &self.defects {
            debug_assert!(
                (pos.node_start..pos.node_start + pos.node_count).contains(&g),
                "defect {g} escaped window [{}, {}]",
                pos.lo,
                pos.hi
            );
            self.local.defects.push(g - pos.node_start);
        }
        // Erasure indices are translated to window-local edge numbering here
        // (global indices would address the wrong edges — or panic — inside
        // the window decoder's overlay).
        for &ge in &self.erasures {
            if let Ok(le) = pos.edge_globals.binary_search(&(ge as u32)) {
                self.local.erasures.push(le);
            }
        }
        self.local.erasures.sort_unstable();
        self.local.erasures.dedup();

        // Tier 1: 1–2 defects and no erasures resolve in closed form when
        // the backend guarantees bit-identity; otherwise tier 2 runs the
        // full decoder. Carried-in defects are in the live set, so they
        // count against the tier threshold.
        let tier1 = self.predecode && tier1_applies(&self.local.defects, &self.local.erasures);
        let inner = &mut self.inner[pos.shape];
        let tier = if tier1 {
            inner
                .decode_tier1(&self.local, Some(&mut self.correction))
                .map(|out| (1usize, out.nanos))
        } else {
            None
        };
        let (tier, tier_nanos) = tier.unwrap_or_else(|| {
            let out = inner.decode_with_correction(&self.local, &mut self.correction);
            (2, out.nanos)
        });
        if self.predecode {
            self.counters.record(tier, tier_nanos);
        }

        // Commit every correction edge touching the commit region; toggle
        // defect parity so the uncommitted remainder (plus any committed
        // path's crossing points) re-injects into the next window.
        let n = sgraph.num_nodes();
        if self.par_stamp.len() < n {
            self.par_stamp.resize(n, 0);
            self.par_val.resize(n, false);
        }
        if self.par_epoch == u32::MAX {
            self.par_stamp.fill(0);
            self.par_epoch = 0;
        }
        self.par_epoch += 1;
        self.touched.clear();
        let local_defects = std::mem::take(&mut self.local.defects);
        for &ld in &local_defects {
            self.toggle(ld);
        }
        self.local.defects = local_defects;
        let commit_rel = pos.commit_rel;
        let boundary = sgraph.boundary();
        let correction = std::mem::take(&mut self.correction);
        for &ce in &correction {
            let e = &sgraph.edges()[ce];
            let committed = sgraph.node_round(e.a) < commit_rel
                || (e.b != boundary && sgraph.node_round(e.b) < commit_rel);
            if committed {
                flip ^= e.flips_observable;
                weight += if self.local.erasures.binary_search(&ce).is_ok() {
                    crate::overlay::ERASED_WEIGHT
                } else {
                    e.weight
                };
                self.toggle(e.a);
                if e.b != boundary {
                    self.toggle(e.b);
                }
            }
        }
        self.correction = correction;

        // Carry: every node left with odd parity is an unresolved (or newly
        // injected) defect; the commit algebra guarantees it lies in the
        // buffer, i.e. inside the next window.
        self.defects.clear();
        let node_start = pos.node_start;
        let touched = std::mem::take(&mut self.touched);
        for &v in &touched {
            if self.par_val[v] {
                debug_assert!(
                    commit_rel != usize::MAX && sgraph.node_round(v) >= commit_rel,
                    "carried defect in the committed region"
                );
                self.defects.push(node_start + v);
            }
        }
        self.touched = touched;
        self.defects.sort_unstable();
        (flip, weight)
    }

    /// Sequential driver: decode position `k`, fold its partials into the
    /// shot accumulators, retire erasures the remaining windows can never
    /// see, and record the per-window latency sample.
    fn decode_position(&mut self, k: usize) {
        // Tier 0: an empty window is skipped outright — no local syndrome,
        // no erasure translation (the live set is empty, so retirement is a
        // no-op too), no latency sample.
        if self.predecode && tier0_applies(&self.defects, &self.erasures) {
            self.counters.record(0, 0);
            return;
        }
        let started = Instant::now();
        let (flip, weight) = self.decode_position_core(k);
        self.flip ^= flip;
        self.weight += weight;

        // Retire erasures that can no longer intersect a future window.
        match self.plan.positions.get(k + 1) {
            Some(next) => {
                let min_edge = next.edge_globals.first().copied().unwrap_or(u32::MAX) as usize;
                self.erasures.retain(|&ge| ge >= min_edge);
            }
            None => self.erasures.clear(),
        }

        let nanos = started.elapsed().as_nanos() as u64;
        self.nanos += nanos;
        let pos = &self.plan.positions[k];
        let committed_rounds = if pos.commit_rel == usize::MAX {
            pos.hi - pos.lo + 1 - pos.overlap
        } else {
            pos.commit_rel
        };
        self.latencies.push((nanos, committed_rounds as u32));
    }

    /// Replays position `k` as a pure function of explicit inputs: the
    /// defect set carried out of position `k − 1`, the fresh defects of
    /// rounds `(hi_{k−1}, hi_k]` (sorted global node ids — carry ids always
    /// precede fresh ids because node numbering is round-major), and the
    /// erasure edges pushed through round `hi_k` (global indices, push
    /// order, duplicates tolerated — translation sorts and dedups, and
    /// indices outside the window simply don't map). Writes the carried-out
    /// defect set to `carry_out` and returns the position's flip/weight
    /// partials.
    ///
    /// This is the fusion primitive: feeding each position its sequential
    /// inputs reproduces the sequential decode exactly (same per-shape
    /// decoder behavior, same fold order), which is what makes the fused
    /// path bit-identical once its speculative carries converge.
    pub(crate) fn replay_position(
        &mut self,
        k: usize,
        carry_in: &[usize],
        fresh: &[usize],
        erasures: &[usize],
        carry_out: &mut Vec<usize>,
    ) -> (bool, f64) {
        self.defects.clear();
        self.defects.extend_from_slice(carry_in);
        self.defects.extend_from_slice(fresh);
        self.erasures.clear();
        self.erasures.extend_from_slice(erasures);
        let partials = self.decode_position_core(k);
        carry_out.clear();
        carry_out.extend_from_slice(&self.defects);
        partials
    }
}

impl StreamingDecoder for WindowedDecoder<'_> {
    fn begin_shot(&mut self) {
        self.round_cursor = 0;
        self.next_position = 0;
        self.defects.clear();
        self.erasures.clear();
        self.total_defects = 0;
        self.flip = false;
        self.weight = 0.0;
        self.nanos = 0;
        self.latencies.clear();
    }

    fn push_round(&mut self, defects: &[usize], erasures: &[usize]) {
        let r = self.round_cursor;
        assert!(r <= self.plan.max_round, "round {r} beyond the experiment");
        debug_assert!(
            defects.windows(2).all(|w| w[0] < w[1]),
            "per-round defects must be ascending"
        );
        self.defects.extend_from_slice(defects);
        self.total_defects += defects.len();
        self.erasures.extend_from_slice(erasures);
        self.round_cursor += 1;
        while self.next_position < self.plan.positions.len()
            && self.plan.positions[self.next_position].hi == r
        {
            self.decode_position(self.next_position);
            self.next_position += 1;
        }
    }

    fn finish(&mut self) -> DecodeOutcome {
        // Defensive: decode any position whose closing round never arrived
        // (a short-fed shot); normally the last push already retired it.
        while self.next_position < self.plan.positions.len() {
            self.decode_position(self.next_position);
            self.next_position += 1;
        }
        debug_assert!(self.defects.is_empty(), "final window left defects");
        DecodeOutcome {
            flip: self.flip,
            weight: self.weight,
            defects: self.total_defects,
            nanos: self.nanos,
        }
    }

    fn name(&self) -> &'static str {
        self.plan.backend.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use qec_core::circuit::DetectorBasis;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    fn graph(d: usize, rounds: usize) -> DecodingGraph {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z)
    }

    #[test]
    fn window_view_maps_nodes_and_edges_round_trip() {
        let g = graph(3, 8);
        let w = WindowGraph::build(&g, 2, 5);
        assert_eq!(w.lo(), 2);
        assert_eq!(w.hi(), 5);
        assert_eq!(w.node_count(), 4 * 4, "4 Z-checks over 4 rounds");
        for local in 0..w.node_count() {
            let global = w.global_node(local);
            assert_eq!(w.local_node(global), Some(local));
            assert_eq!(g.node_round(global) - 2, w.graph().node_round(local));
        }
        assert_eq!(w.local_node(w.node_start() + w.node_count()), None);
        for local in 0..w.graph().edges().len() {
            let global = w.global_edge(local);
            assert_eq!(w.local_edge(global), Some(local));
            let (le, ge) = (&w.graph().edges()[local], &g.edges()[global]);
            assert_eq!(le.weight, ge.weight);
            assert_eq!(le.flips_observable, ge.flips_observable);
        }
        // A time-crossing edge must not be in the window.
        let crossing = g
            .edges()
            .iter()
            .position(|e| e.b != g.boundary() && g.node_round(e.a) == 5 && g.node_round(e.b) == 6)
            .expect("a (5, 6) time edge exists");
        assert_eq!(w.local_edge(crossing), None);
    }

    #[test]
    fn full_span_window_is_the_whole_graph() {
        let g = graph(3, 4);
        let w = WindowGraph::build(&g, 0, g.max_round());
        assert_eq!(w.node_count(), g.num_nodes());
        assert_eq!(w.graph().edges(), g.edges());
        for ei in 0..g.edges().len() {
            assert_eq!(w.local_edge(ei), Some(ei));
        }
    }

    #[test]
    fn plan_dedupes_bulk_shapes() {
        let g = graph(3, 40);
        let plan = WindowPlan::new(&g, 8, 4, WindowBackend::Mwpm);
        assert!(plan.num_positions() >= 8, "got {}", plan.num_positions());
        // First window (round-0 structure), bulk windows (all identical by
        // time translation), and the final window(s): a handful of shapes no
        // matter how long the experiment runs.
        assert!(
            plan.num_shapes() <= 4,
            "expected O(1) shapes, got {}",
            plan.num_shapes()
        );
        // And the plan footprint is orders of magnitude below the monolithic
        // APSP (which would be ((4·41)+1)² ≈ 27k entries here — at R=1000 it
        // would be ~16M entries).
        assert!(plan.approx_decoder_bytes() < 4 << 20);
    }

    #[test]
    fn approx_decoder_bytes_tracks_each_backends_tables() {
        let g = graph(5, 30);
        let (window, stride) = (10, 5);
        let mut by_backend = std::collections::HashMap::new();
        for backend in [
            WindowBackend::Mwpm,
            WindowBackend::SparseMwpm,
            WindowBackend::UnionFind,
            WindowBackend::Greedy,
        ] {
            let plan = WindowPlan::new(&g, window, stride, backend);
            // The estimate must delegate to the populated tables' own
            // `approx_bytes` — recompute it from the parts and demand
            // equality, so a table layout change can't silently desync
            // the cache pricing.
            let mut expected = 0;
            for (shape, data) in plan.shapes.iter().zip(&plan.shape_data) {
                expected += std::mem::size_of_val(shape.graph().edges());
                expected += shape.node_count() * std::mem::size_of::<usize>() * 3;
                expected += data.paths.as_ref().map_or(0, |t| t.approx_bytes());
                expected += data.capacities.as_ref().map_or(0, |t| t.approx_bytes());
                expected += data.sparse.as_ref().map_or(0, |t| t.approx_bytes());
                // Exactly one table per shape, matching the backend.
                let tables = [
                    data.paths.is_some(),
                    data.capacities.is_some(),
                    data.sparse.is_some(),
                ];
                assert_eq!(tables.iter().filter(|&&t| t).count(), 1, "{backend:?}");
                let want = match backend {
                    WindowBackend::Mwpm | WindowBackend::Greedy => [true, false, false],
                    WindowBackend::UnionFind => [false, true, false],
                    WindowBackend::SparseMwpm => [false, false, true],
                };
                assert_eq!(tables, want, "{backend:?}");
            }
            for pos in &plan.positions {
                expected += pos.edge_globals.len() * std::mem::size_of::<u32>();
            }
            assert_eq!(plan.approx_decoder_bytes(), expected, "{backend:?}");
            by_backend.insert(backend.name(), plan.approx_decoder_bytes());
        }
        // The sparse index is O(V) per shape vs the APSP's O(V²): the
        // sparse-backed plan must be meaningfully smaller, which is the
        // misreport the old hand-expanded estimate got wrong.
        assert!(
            by_backend["sparse-mwpm"] * 2 < by_backend["mwpm"],
            "sparse {} vs mwpm {}",
            by_backend["sparse-mwpm"],
            by_backend["mwpm"]
        );
        assert!(by_backend["union-find"] < by_backend["mwpm"]);
        assert_eq!(by_backend["greedy"], by_backend["mwpm"]);
    }

    #[test]
    fn plan_positions_tile_the_rounds() {
        let g = graph(3, 11);
        for (window, stride) in [(4usize, 2usize), (5, 5), (3, 1), (12, 6), (30, 7)] {
            let plan = WindowPlan::new(&g, window, stride, WindowBackend::UnionFind);
            let span = g.max_round() + 1;
            let positions = &plan.positions;
            assert_eq!(positions[0].lo, 0);
            assert_eq!(positions.last().unwrap().hi, g.max_round());
            assert_eq!(positions.last().unwrap().commit_rel, usize::MAX);
            for pos in positions.iter() {
                // Every position — the clamped final one included — keeps
                // the full window width (the buffer guarantee).
                assert_eq!(
                    pos.hi - pos.lo + 1,
                    window.min(span),
                    "w={window} s={stride}"
                );
            }
            for pair in positions.windows(2) {
                // `overlap` absorbs the final clamp: the *fresh* region still
                // starts exactly one stride after the previous window.
                assert_eq!(pair[1].lo + pair[1].overlap, pair[0].lo + stride);
                assert_eq!(pair[0].commit_rel, stride);
                assert_eq!(pair[0].overlap, 0);
                // The buffer region is exactly what the next window re-reads.
                assert!(pair[1].lo + pair[1].overlap <= pair[0].hi + 1);
            }
            // Committed rounds add up to the whole span.
            let committed: usize = positions
                .iter()
                .map(|p| {
                    if p.commit_rel == usize::MAX {
                        p.hi - p.lo + 1 - p.overlap
                    } else {
                        p.commit_rel
                    }
                })
                .sum();
            assert_eq!(committed, span, "w={window} s={stride}");
        }
    }

    #[test]
    fn streaming_decodes_empty_shot_trivially() {
        let g = graph(3, 6);
        let plan = WindowPlan::new(&g, 3, 2, WindowBackend::Mwpm);
        let mut dec = plan.streaming();
        dec.begin_shot();
        for _ in 0..=g.max_round() {
            dec.push_round(&[], &[]);
        }
        let out = dec.finish();
        assert!(!out.flip);
        assert_eq!(out.defects, 0);
        assert_eq!(out.weight, 0.0);
        // Tier 0 skips every empty window outright: no latency samples.
        assert!(dec.window_latencies().is_empty());
        assert_eq!(dec.tier_counters().hits[0], plan.num_positions() as u64);
        assert_eq!(dec.tier_counters().total(), plan.num_positions() as u64);
        assert_eq!(dec.name(), "mwpm");

        // With the predecoder off, every position runs the full backend and
        // takes a latency sample (the pre-tier behavior).
        let mut dec = plan.streaming();
        dec.set_predecode(false);
        dec.begin_shot();
        for _ in 0..=g.max_round() {
            dec.push_round(&[], &[]);
        }
        let out = dec.finish();
        assert!(!out.flip);
        assert_eq!(out.weight, 0.0);
        assert_eq!(dec.window_latencies().len(), plan.num_positions());
        assert!(!dec.tier_counters().is_active());
    }
}
