//! Shared f64 → integer weight quantization for the matching decoders.
//!
//! Both blossom backends — the dense all-pairs decoder ([`crate::mwpm`]) and
//! the sparse local decoder ([`crate::sparse`]) — reduce matching to the
//! exact integer blossom solver in [`crate::matching`], so both must convert
//! f64 log-likelihood weights to integers. The conversion lives here, in one
//! place, for a correctness reason beyond tidiness: [`crate::DecodingGraph`]
//! snaps every edge weight to the `1 / WEIGHT_SCALE` grid at construction
//! ([`snap_weight`]), which makes "scale a summed f64 path length"
//! (dense: [`scale_weight`] of a Dijkstra sum) and "sum scaled integer edge
//! weights" (sparse: integer Dijkstra over [`scale_weight`] of each edge)
//! agree *exactly* — the accumulated f64 error over any realistic path is
//! ~1e-13 of a quantum, far below the 0.5 rounding margin. Weight-optimality
//! comparisons between the two backends are therefore exact integer
//! equalities, not epsilon tests.

/// Resolution of the integer weight grid: one integer unit per
/// `1 / WEIGHT_SCALE` of log-likelihood weight.
pub const WEIGHT_SCALE: f64 = 1e4;

/// Largest scaled weight a single edge may carry. With probabilities clamped
/// to `[1e-12, 0.5)` the worst edge weight is `ln((1-1e-12)/1e-12) ≈ 27.6`,
/// i.e. ~2.8e5 units — this bound leaves three orders of magnitude of
/// headroom while keeping any sum of `< 2^31` edges (far beyond any d × R
/// product) below `i64::MAX / 4`, so the blossom reduction's `c - w`
/// arithmetic can never overflow.
pub const MAX_SCALED_EDGE_WEIGHT: i64 = 1 << 28;

/// Converts an f64 weight (an edge weight, or a sum of snapped edge weights)
/// to the integer grid the blossom solver works on.
#[inline]
pub fn scale_weight(w: f64) -> i64 {
    (w * WEIGHT_SCALE).round() as i64
}

/// Snaps an f64 edge weight to the quantization grid (the f64 that exactly
/// de-scales [`scale_weight`]). Idempotent.
#[inline]
pub fn snap_weight(w: f64) -> f64 {
    scale_weight(w) as f64 / WEIGHT_SCALE
}

/// Validates one decoding-graph edge weight at graph-construction time:
/// finite, positive, and quantizable without overflow or tie-collapse.
///
/// # Panics
///
/// Panics with a clear message if `w` is NaN/infinite/non-positive (e.g. a
/// degenerate DEM mechanism with p = 0 or p ≥ 0.5 reaching the graph without
/// clamping), if it quantizes to 0 (distinct weights would collapse onto
/// erased/free edges), or if it exceeds [`MAX_SCALED_EDGE_WEIGHT`] (i64
/// overflow headroom for large d × R path sums).
pub fn validate_edge_weight(edge: usize, w: f64) {
    assert!(
        w.is_finite() && w > 0.0,
        "decoding-graph edge {edge} has invalid weight {w}: weights must be \
         finite and positive (check the DEM mechanism probabilities)"
    );
    let scaled = scale_weight(w);
    assert!(
        scaled >= 1,
        "decoding-graph edge {edge} weight {w} quantizes to 0 at \
         WEIGHT_SCALE={WEIGHT_SCALE}: ties with free edges would collapse"
    );
    assert!(
        scaled <= MAX_SCALED_EDGE_WEIGHT,
        "decoding-graph edge {edge} weight {w} exceeds the integer headroom \
         ({scaled} > {MAX_SCALED_EDGE_WEIGHT}): path sums could overflow i64"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snap_is_idempotent_and_scale_exact() {
        for w in [1e-4, 1e-3, 0.7312, 6.9068, 27.631] {
            let snapped = snap_weight(w);
            assert_eq!(snap_weight(snapped), snapped);
            // Scaling a snapped weight recovers the integer exactly.
            assert_eq!(scale_weight(snapped), scale_weight(w));
        }
    }

    #[test]
    fn snapped_sums_scale_exactly() {
        // The property the dense/sparse equivalence rests on: a f64 sum of
        // snapped weights scales to the exact sum of the scaled integers.
        let weights: Vec<f64> = (1..2000).map(|i| snap_weight(i as f64 * 7e-3)).collect();
        let f64_sum: f64 = weights.iter().sum();
        let int_sum: i64 = weights.iter().map(|&w| scale_weight(w)).sum();
        assert_eq!(scale_weight(f64_sum), int_sum);
    }

    #[test]
    fn validate_accepts_the_realistic_range() {
        validate_edge_weight(0, 1e-4); // the graph's weight floor
        validate_edge_weight(0, 27.631); // p = 1e-12
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn validate_rejects_nan() {
        validate_edge_weight(3, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn validate_rejects_infinite() {
        validate_edge_weight(4, f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "quantizes to 0")]
    fn validate_rejects_tie_collapse() {
        validate_edge_weight(5, 1e-9);
    }

    #[test]
    #[should_panic(expected = "integer headroom")]
    fn validate_rejects_overflow_scale() {
        validate_edge_weight(6, 1e30);
    }
}
