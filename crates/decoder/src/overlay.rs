//! Erasure weight overlay: dynamic reweighting of decoding-graph edges at
//! known-leakage locations.
//!
//! ERASER's premise is that leakage *detection* information is valuable.
//! When a policy flags a qubit as leaked, the errors it sprays on its
//! neighbouring checks are **heralded**: the decoder should treat the
//! decoding-graph edges around the flagged location as erasures — near-free
//! to traverse — exactly as erasure-decoding converts located noise into a
//! much more correctable channel (Gu/Retzker/Kubica 2023; Chang et al. 2024,
//! "Surface Code with Imperfect Erasure Checks"; fusion-blossom's erasure
//! tutorial).
//!
//! [`WeightOverlay`] is the reusable per-decoder-instance scratch that makes
//! this cheap. Conceptually it sets every flagged edge's weight to
//! [`ERASED_WEIGHT`] (~0) for MWPM path costs, union-find growth, and greedy
//! pairing, then restores the weights after the shot. The implementation
//! never mutates the shared graph (which is `Arc`-shared across worker
//! threads) and never re-runs Dijkstra: erased edges have ~zero weight, so
//! each connected component of erased edges collapses to a single free hub,
//! and the overlaid shortest path between two defects is
//!
//! ```text
//! d'(u, v) = min( d(u, v),
//!                 min over hubs c₁, c₂:  d(u, c₁) + D(c₁, c₂) + d(c₂, v) )
//! ```
//!
//! where `d` is the precomputed all-pairs table and `D` is a tiny
//! Floyd–Warshall closure over the hubs. Observable parity is tracked along
//! every minimizing path (within a component, along its spanning tree —
//! homologically ambiguous ε-cycles inside an erased region are inherent to
//! erasure decoding). All state lives in epoch-stamped buffers sized to the
//! graph, so the steady-state per-shot loop performs **no heap allocation**
//! once warm, matching the batch decoders' guarantee.
//!
//! Consumers:
//!
//! * MWPM and greedy call [`WeightOverlay::apply`] then
//!   [`WeightOverlay::effective_metrics`] to obtain overlaid
//!   defect-to-defect / defect-to-boundary distances and parities;
//! * union-find calls [`WeightOverlay::apply`] and queries
//!   [`WeightOverlay::is_erased`] per edge (erased edges grow in one unit and
//!   contribute [`ERASED_WEIGHT`] to the peeled correction);
//! * everyone calls [`WeightOverlay::restore`] when the shot is done.

use crate::graph::DecodingGraph;
use crate::mwpm::ShortestPaths;

/// The weight the union-find decoder charges per erased edge in its peeled
/// correction (effectively free, but positive so the reported outcome
/// weight still counts erased traversals). The matching decoders' overlaid
/// metric treats intra-component travel as exactly 0 — see
/// [`WeightOverlay::effective_metrics`].
pub const ERASED_WEIGHT: f64 = 1e-3;

/// Reusable erasure-reweighting scratch (see the module docs).
///
/// One instance lives inside every batch-decoder instance; it is *not*
/// shared across threads. All buffers are epoch-stamped: `apply` is O(|
/// erasures|), not O(edges), and nothing is freed between shots.
#[derive(Debug, Default)]
pub struct WeightOverlay {
    epoch: u32,
    /// Edge is erased in the current epoch iff `edge_stamp[ei] == epoch`.
    edge_stamp: Vec<u32>,
    /// Node touches an erased edge iff `node_stamp[v] == epoch`; its local
    /// index is then `node_local[v]`.
    node_stamp: Vec<u32>,
    node_local: Vec<usize>,
    /// Local index -> global node id of every touched node.
    nodes: Vec<usize>,
    // Parity union-find over local indices (parity = observable parity of
    // the erased-edge path to the parent).
    parent: Vec<usize>,
    par_to_parent: Vec<bool>,
    rank: Vec<u8>,
    stack: Vec<usize>,
    // Finalized components.
    comp_of_local: Vec<usize>,
    par_to_root: Vec<bool>,
    comp_count: usize,
    /// Local indices grouped by component: `member_order[comp_start[c]..
    /// comp_start[c + 1]]` are component `c`'s members.
    member_order: Vec<usize>,
    comp_start: Vec<usize>,
    cursor: Vec<usize>,
    // Scratch for `effective_metrics`.
    entry_dist: Vec<f64>,
    entry_par: Vec<bool>,
    comp_dist: Vec<f64>,
    comp_par: Vec<bool>,
}

impl WeightOverlay {
    /// An empty overlay; buffers grow on first use and are reused after.
    pub fn new() -> WeightOverlay {
        WeightOverlay::default()
    }

    /// Applies the erasure set for one shot: marks the edges and builds the
    /// connected components of the erased subgraph (with observable parity
    /// along a spanning tree of each component). Duplicate edge indices are
    /// tolerated.
    ///
    /// # Panics
    ///
    /// Panics if an erasure index is out of range for `graph`'s edge list.
    pub fn apply(&mut self, graph: &DecodingGraph, erasures: &[usize]) {
        self.bump_epoch(graph);
        self.nodes.clear();
        self.parent.clear();
        self.par_to_parent.clear();
        self.rank.clear();
        let edges = graph.edges();
        for &ei in erasures {
            assert!(
                ei < edges.len(),
                "erasure index {ei} out of range for a graph with {} edges",
                edges.len()
            );
            if self.edge_stamp[ei] == self.epoch {
                continue; // duplicate flag
            }
            self.edge_stamp[ei] = self.epoch;
            let e = &edges[ei];
            let la = self.local(e.a);
            let lb = self.local(e.b);
            self.union(la, lb, e.flips_observable);
        }
        self.finalize_components();
    }

    /// Clears the current erasure marks (conceptually: restores every flagged
    /// edge's weight). O(1): the next `apply` starts a fresh epoch.
    pub fn restore(&mut self) {
        self.comp_count = 0;
        self.nodes.clear();
    }

    /// Whether edge `ei` is erased in the currently applied set.
    pub fn is_erased(&self, ei: usize) -> bool {
        self.edge_stamp.get(ei).copied() == Some(self.epoch) && !self.nodes.is_empty()
    }

    /// The edge's effective weight under the overlay: [`ERASED_WEIGHT`] when
    /// erased, the graph weight otherwise.
    pub fn effective_weight(&self, graph: &DecodingGraph, ei: usize) -> f64 {
        if self.is_erased(ei) {
            ERASED_WEIGHT
        } else {
            graph.edges()[ei].weight
        }
    }

    /// Number of erased-edge components in the currently applied set.
    pub fn num_components(&self) -> usize {
        self.comp_count
    }

    /// Computes the overlaid terminal metric: for terminals `T = defects ++
    /// [boundary]` (so `t = defects.len() + 1`), fills `dist`/`par` as `t×t`
    /// row-major matrices with the overlay-shortest distance and its
    /// observable parity between every terminal pair. With no erased
    /// components this degenerates to the plain `paths` table.
    ///
    /// Output vectors are cleared and resized (allocation reused once warm).
    pub fn effective_metrics(
        &mut self,
        paths: &ShortestPaths,
        defects: &[usize],
        boundary: usize,
        dist: &mut Vec<f64>,
        par: &mut Vec<bool>,
    ) {
        let t = defects.len() + 1;
        dist.clear();
        dist.resize(t * t, 0.0);
        par.clear();
        par.resize(t * t, false);
        let node = |i: usize| {
            if i < defects.len() {
                defects[i]
            } else {
                boundary
            }
        };

        // Base metric: the precomputed (erasure-blind) table.
        for i in 0..t {
            for j in (i + 1)..t {
                let (u, v) = (node(i), node(j));
                dist[i * t + j] = paths.distance(u, v);
                dist[j * t + i] = dist[i * t + j];
                par[i * t + j] = paths.observable_parity(u, v);
                par[j * t + i] = par[i * t + j];
            }
        }
        let q = self.comp_count;
        if q == 0 {
            return;
        }

        // Entry metric: cheapest attachment of each terminal to each erased
        // component (any member works — intra-component travel is free).
        self.entry_dist.clear();
        self.entry_dist.resize(t * q, f64::INFINITY);
        self.entry_par.clear();
        self.entry_par.resize(t * q, false);
        for i in 0..t {
            let u = node(i);
            for c in 0..q {
                let mut best = f64::INFINITY;
                let mut best_par = false;
                for &l in &self.member_order[self.comp_start[c]..self.comp_start[c + 1]] {
                    let a = self.nodes[l];
                    let d = paths.distance(u, a);
                    if d < best {
                        best = d;
                        best_par = paths.observable_parity(u, a) ^ self.par_to_root[l];
                    }
                }
                self.entry_dist[i * q + c] = best;
                self.entry_par[i * q + c] = best_par;
            }
        }

        // Hub-to-hub closure: cheapest inter-component hops, then a tiny
        // Floyd–Warshall so chains through several erased regions are free.
        self.comp_dist.clear();
        self.comp_dist.resize(q * q, f64::INFINITY);
        self.comp_par.clear();
        self.comp_par.resize(q * q, false);
        for c in 0..q {
            self.comp_dist[c * q + c] = 0.0;
        }
        for c in 0..q {
            for d2 in (c + 1)..q {
                let mut best = f64::INFINITY;
                let mut best_par = false;
                for &la in &self.member_order[self.comp_start[c]..self.comp_start[c + 1]] {
                    for &lb in &self.member_order[self.comp_start[d2]..self.comp_start[d2 + 1]] {
                        let d = paths.distance(self.nodes[la], self.nodes[lb]);
                        if d < best {
                            best = d;
                            best_par = self.par_to_root[la]
                                ^ paths.observable_parity(self.nodes[la], self.nodes[lb])
                                ^ self.par_to_root[lb];
                        }
                    }
                }
                self.comp_dist[c * q + d2] = best;
                self.comp_dist[d2 * q + c] = best;
                self.comp_par[c * q + d2] = best_par;
                self.comp_par[d2 * q + c] = best_par;
            }
        }
        for k in 0..q {
            for c in 0..q {
                for d2 in 0..q {
                    let via = self.comp_dist[c * q + k] + self.comp_dist[k * q + d2];
                    if via < self.comp_dist[c * q + d2] {
                        self.comp_dist[c * q + d2] = via;
                        self.comp_par[c * q + d2] =
                            self.comp_par[c * q + k] ^ self.comp_par[k * q + d2];
                    }
                }
            }
        }

        // Improve every terminal pair through the hubs.
        for i in 0..t {
            for j in (i + 1)..t {
                let mut best = dist[i * t + j];
                let mut best_par = par[i * t + j];
                for c in 0..q {
                    for d2 in 0..q {
                        let via = self.entry_dist[i * q + c]
                            + self.comp_dist[c * q + d2]
                            + self.entry_dist[j * q + d2];
                        if via < best {
                            best = via;
                            best_par = self.entry_par[i * q + c]
                                ^ self.comp_par[c * q + d2]
                                ^ self.entry_par[j * q + d2];
                        }
                    }
                }
                dist[i * t + j] = best;
                dist[j * t + i] = best;
                par[i * t + j] = best_par;
                par[j * t + i] = best_par;
            }
        }
    }

    fn bump_epoch(&mut self, graph: &DecodingGraph) {
        let n_edges = graph.edges().len();
        let n_nodes = graph.num_nodes() + 1;
        if self.edge_stamp.len() < n_edges {
            self.edge_stamp.resize(n_edges, 0);
        }
        if self.node_stamp.len() < n_nodes {
            self.node_stamp.resize(n_nodes, 0);
            self.node_local.resize(n_nodes, 0);
        }
        if self.epoch == u32::MAX {
            self.edge_stamp.fill(0);
            self.node_stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Local index of node `v`, registering it on first sight this epoch.
    fn local(&mut self, v: usize) -> usize {
        if self.node_stamp[v] == self.epoch {
            return self.node_local[v];
        }
        let l = self.nodes.len();
        self.node_stamp[v] = self.epoch;
        self.node_local[v] = l;
        self.nodes.push(v);
        self.parent.push(l);
        self.par_to_parent.push(false);
        self.rank.push(0);
        l
    }

    /// Root of `x` plus the observable parity of the path `x -> root`, with
    /// full path compression.
    fn find(&mut self, x: usize) -> (usize, bool) {
        self.stack.clear();
        let mut root = x;
        while self.parent[root] != root {
            self.stack.push(root);
            root = self.parent[root];
        }
        let mut par_from_root = false;
        for &v in self.stack.iter().rev() {
            par_from_root ^= self.par_to_parent[v];
            self.parent[v] = root;
            self.par_to_parent[v] = par_from_root;
        }
        (
            root,
            if x == root {
                false
            } else {
                self.par_to_parent[x]
            },
        )
    }

    /// Unions the components of `a` and `b`, where the connecting erased edge
    /// carries observable parity `rel`.
    fn union(&mut self, a: usize, b: usize, rel: bool) {
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        if ra == rb {
            return;
        }
        let (big, small, par_small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb, pa ^ pb ^ rel)
        } else {
            (rb, ra, pa ^ pb ^ rel)
        };
        self.parent[small] = big;
        self.par_to_parent[small] = par_small;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
    }

    /// Assigns component ids and groups members per component.
    fn finalize_components(&mut self) {
        let n = self.nodes.len();
        self.comp_of_local.clear();
        self.comp_of_local.resize(n, usize::MAX);
        self.par_to_root.clear();
        self.par_to_root.resize(n, false);
        self.comp_count = 0;
        // First pass: compress everything and record parities to the root;
        // then id the roots in first-seen order.
        for l in 0..n {
            let (_, par) = self.find(l);
            self.par_to_root[l] = par;
        }
        for l in 0..n {
            let root = self.parent[l];
            if self.comp_of_local[root] == usize::MAX {
                self.comp_of_local[root] = self.comp_count;
                self.comp_count += 1;
            }
        }
        for l in 0..n {
            self.comp_of_local[l] = self.comp_of_local[self.parent[l]];
        }
        // Counting sort of members by component id.
        let q = self.comp_count;
        self.comp_start.clear();
        self.comp_start.resize(q + 1, 0);
        for l in 0..n {
            self.comp_start[self.comp_of_local[l] + 1] += 1;
        }
        for c in 0..q {
            let prev = self.comp_start[c];
            self.comp_start[c + 1] += prev;
        }
        self.member_order.clear();
        self.member_order.resize(n, 0);
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.comp_start);
        for l in 0..n {
            let c = self.comp_of_local[l];
            self.member_order[self.cursor[c]] = l;
            self.cursor[c] += 1;
        }
    }
}

/// Reusable Dijkstra scratch for reconstructing shortest paths under the
/// overlay-effective metric (erased edges cost [`ERASED_WEIGHT`]).
///
/// The matching decoders pick erasure-aware pairs through the hub-contracted
/// [`WeightOverlay::effective_metrics`]; when a windowed pipeline then needs
/// the correction as explicit edges, this scratch recovers a concrete
/// minimum-effective-weight path per matched pair. Buffers are stamped and
/// reused, so warm calls perform no heap allocation.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    epoch: u32,
    dist: Vec<f64>,
    pred_edge: Vec<usize>,
    pred_node: Vec<usize>,
    stamp: Vec<u32>,
    done: Vec<bool>,
    heap: std::collections::BinaryHeap<std::cmp::Reverse<EffHeapItem>>,
}

#[derive(Debug, PartialEq)]
struct EffHeapItem(f64, usize);

impl Eq for EffHeapItem {}

impl PartialOrd for EffHeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EffHeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // `total_cmp`, not `partial_cmp().unwrap()`: a degenerate effective
        // weight must never panic inside BinaryHeap (see `HeapItem`).
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

impl DijkstraScratch {
    /// A fresh scratch; buffers grow on first use and are reused after.
    pub fn new() -> DijkstraScratch {
        DijkstraScratch::default()
    }

    /// Appends the edge indices of a shortest `u -> v` path under the
    /// overlay-effective weights to `out` and returns the XOR of the path
    /// edges' observable flips.
    ///
    /// # Panics
    ///
    /// Panics if `v` is unreachable from `u`.
    pub fn effective_path_edges(
        &mut self,
        graph: &DecodingGraph,
        overlay: &WeightOverlay,
        u: usize,
        v: usize,
        out: &mut Vec<usize>,
    ) -> bool {
        let n = graph.num_nodes() + 1;
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
            self.dist.resize(n, f64::INFINITY);
            self.pred_edge.resize(n, usize::MAX);
            self.pred_node.resize(n, usize::MAX);
            self.done.resize(n, false);
        }
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.heap.clear();
        let touch = |slf: &mut DijkstraScratch, x: usize| {
            if slf.stamp[x] != slf.epoch {
                slf.stamp[x] = slf.epoch;
                slf.dist[x] = f64::INFINITY;
                slf.pred_edge[x] = usize::MAX;
                slf.pred_node[x] = usize::MAX;
                slf.done[x] = false;
            }
        };
        touch(self, u);
        self.dist[u] = 0.0;
        self.heap.push(std::cmp::Reverse(EffHeapItem(0.0, u)));
        while let Some(std::cmp::Reverse(EffHeapItem(d, x))) = self.heap.pop() {
            if self.done[x] {
                continue;
            }
            self.done[x] = true;
            if x == v {
                break;
            }
            for &ei in graph.incident(x) {
                let e = &graph.edges()[ei];
                let y = if e.a == x { e.b } else { e.a };
                touch(self, y);
                let nd = d + overlay.effective_weight(graph, ei);
                if nd < self.dist[y] {
                    self.dist[y] = nd;
                    self.pred_edge[y] = ei;
                    self.pred_node[y] = x;
                    self.heap.push(std::cmp::Reverse(EffHeapItem(nd, y)));
                }
            }
        }
        assert!(
            self.stamp[v] == self.epoch && self.dist[v].is_finite(),
            "node {u} cannot reach node {v} under the overlay metric"
        );
        let mut flip = false;
        let mut cur = v;
        let start = out.len();
        while cur != u {
            let ei = self.pred_edge[cur];
            out.push(ei);
            flip ^= graph.edges()[ei].flips_observable;
            cur = self.pred_node[cur];
        }
        out[start..].reverse();
        flip
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use qec_core::circuit::DetectorBasis;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    fn graph() -> DecodingGraph {
        let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 3);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z)
    }

    #[test]
    fn apply_marks_and_restore_clears() {
        let g = graph();
        let mut overlay = WeightOverlay::new();
        overlay.apply(&g, &[0, 2, 2]);
        assert!(overlay.is_erased(0));
        assert!(!overlay.is_erased(1));
        assert!(overlay.is_erased(2));
        assert!(overlay.num_components() >= 1);
        assert_eq!(overlay.effective_weight(&g, 0), ERASED_WEIGHT);
        assert_eq!(overlay.effective_weight(&g, 1), g.edges()[1].weight);
        overlay.restore();
        assert!(!overlay.is_erased(0));
        assert_eq!(overlay.num_components(), 0);
        // A later apply starts clean.
        overlay.apply(&g, &[1]);
        assert!(!overlay.is_erased(0));
        assert!(overlay.is_erased(1));
    }

    #[test]
    fn components_merge_through_shared_nodes() {
        let g = graph();
        let mut overlay = WeightOverlay::new();
        // Two edges sharing a node form one component; an edge elsewhere
        // forms another.
        let shared = g.incident(0);
        assert!(shared.len() >= 2);
        let other = *g
            .incident(g.num_nodes() - 1)
            .iter()
            .find(|ei| !shared.contains(ei))
            .expect("a disjoint edge");
        overlay.apply(&g, &[shared[0], shared[1], other]);
        assert_eq!(overlay.num_components(), 2);
    }

    #[test]
    fn effective_metrics_without_components_matches_paths() {
        let g = graph();
        let paths = ShortestPaths::compute(&g);
        let mut overlay = WeightOverlay::new();
        overlay.apply(&g, &[]);
        let defects = [0usize, 3, 5];
        let (mut dist, mut par) = (Vec::new(), Vec::new());
        overlay.effective_metrics(&paths, &defects, g.boundary(), &mut dist, &mut par);
        let t = defects.len() + 1;
        for (i, &u) in defects.iter().enumerate() {
            for (j, &v) in defects.iter().enumerate() {
                assert_eq!(dist[i * t + j], paths.distance(u, v));
                assert_eq!(par[i * t + j], paths.observable_parity(u, v));
            }
            assert_eq!(dist[i * t + t - 1], paths.distance(u, g.boundary()));
        }
    }

    #[test]
    fn erasing_edges_only_shrinks_distances() {
        let g = graph();
        let paths = ShortestPaths::compute(&g);
        let mut overlay = WeightOverlay::new();
        let erased: Vec<usize> = g.incident(1).to_vec();
        overlay.apply(&g, &erased);
        let defects = [0usize, 2, 4, 7];
        let (mut dist, mut par) = (Vec::new(), Vec::new());
        overlay.effective_metrics(&paths, &defects, g.boundary(), &mut dist, &mut par);
        let t = defects.len() + 1;
        for i in 0..t {
            for j in 0..t {
                let u = if i < defects.len() {
                    defects[i]
                } else {
                    g.boundary()
                };
                let v = if j < defects.len() {
                    defects[j]
                } else {
                    g.boundary()
                };
                assert!(
                    dist[i * t + j] <= paths.distance(u, v) + 1e-12,
                    "overlay must never lengthen a path"
                );
            }
        }
        // A defect adjacent to the erased hub reaches the hub's other
        // neighbours (almost) for free.
        let e = &g.edges()[erased[0]];
        let neighbour = if e.a == 1 { e.b } else { e.a };
        let di = defects.iter().position(|&d| d == neighbour);
        if let Some(i) = di {
            assert!(dist[i * t + t - 1] <= paths.distance(neighbour, g.boundary()) + 1e-12);
        }
    }

    #[test]
    fn parity_tracks_the_spanning_tree() {
        let g = graph();
        let paths = ShortestPaths::compute(&g);
        // Erase one edge; the two endpoints become mutually free with the
        // edge's own parity.
        let ei = g
            .edges()
            .iter()
            .position(|e| e.b != g.boundary())
            .expect("a bulk edge");
        let e = &g.edges()[ei];
        let mut overlay = WeightOverlay::new();
        overlay.apply(&g, &[ei]);
        let defects = [e.a, e.b];
        let (mut dist, mut par) = (Vec::new(), Vec::new());
        overlay.effective_metrics(&paths, &defects, g.boundary(), &mut dist, &mut par);
        assert!(dist[1] <= 1e-9, "endpoints of an erased edge are free");
        assert_eq!(par[1], e.flips_observable);
    }

    #[test]
    fn dijkstra_path_follows_the_effective_metric() {
        let g = graph();
        let mut overlay = WeightOverlay::new();
        let mut scratch = DijkstraScratch::new();
        let mut out = Vec::new();
        // Without erasures, the path between an edge's endpoints is the edge
        // itself and the returned parity is the edge's.
        let ei = g
            .edges()
            .iter()
            .position(|e| e.b != g.boundary())
            .expect("a bulk edge");
        let e = g.edges()[ei].clone();
        overlay.apply(&g, &[]);
        let flip = scratch.effective_path_edges(&g, &overlay, e.a, e.b, &mut out);
        assert_eq!(out, vec![ei]);
        assert_eq!(flip, e.flips_observable);
        overlay.restore();
        // Erasing a detour makes it the shortest path: erase every edge
        // around a hub node and route between two of its neighbours.
        let hub = g.edges()[g.incident(0)[0]].a;
        let erased: Vec<usize> = g.incident(hub).to_vec();
        assert!(erased.len() >= 2);
        let (e1, e2) = (&g.edges()[erased[0]], &g.edges()[erased[1]]);
        let n1 = if e1.a == hub { e1.b } else { e1.a };
        let n2 = if e2.a == hub { e2.b } else { e2.a };
        if n1 != n2 && n1 != g.boundary() && n2 != g.boundary() {
            overlay.apply(&g, &erased);
            out.clear();
            let flip = scratch.effective_path_edges(&g, &overlay, n1, n2, &mut out);
            let cost: f64 = out.iter().map(|&x| overlay.effective_weight(&g, x)).sum();
            assert!(cost <= erased.len() as f64 * ERASED_WEIGHT + 1e-9);
            assert!(out.iter().all(|x| erased.contains(x)), "path stays erased");
            let xor = out
                .iter()
                .fold(false, |acc, &x| acc ^ g.edges()[x].flips_observable);
            assert_eq!(xor, flip);
            overlay.restore();
        }
    }

    #[test]
    fn warm_scratch_is_deterministic() {
        let g = graph();
        let paths = ShortestPaths::compute(&g);
        let mut overlay = WeightOverlay::new();
        let erased: Vec<usize> = g.incident(2).iter().chain(g.incident(9)).copied().collect();
        let defects = [0usize, 3, 8, 11];
        let (mut d1, mut p1) = (Vec::new(), Vec::new());
        overlay.apply(&g, &erased);
        overlay.effective_metrics(&paths, &defects, g.boundary(), &mut d1, &mut p1);
        overlay.restore();
        // Interleave an unrelated shot, then repeat the first.
        overlay.apply(&g, &[0]);
        overlay.restore();
        let (mut d2, mut p2) = (Vec::new(), Vec::new());
        overlay.apply(&g, &erased);
        overlay.effective_metrics(&paths, &defects, g.boundary(), &mut d2, &mut p2);
        overlay.restore();
        assert_eq!(d1, d2);
        assert_eq!(p1, p2);
    }
}
