//! Weighted union-find decoder (Delfosse–Nickerson).
//!
//! An almost-linear-time alternative to MWPM, used for the paper's largest
//! configurations (d = 9, 11 over 110 rounds) where O(n³) matching per shot
//! is impractical. Clusters grow from each defect in integer weight units;
//! odd clusters keep growing until they merge with another odd cluster or
//! touch the boundary; a peeling pass then extracts the correction and its
//! effect on the logical observable.

use crate::graph::DecodingGraph;
use crate::Decoder;

/// Union-find decoder over a decoding graph.
///
/// # Example
///
/// ```
/// use qec_core::NoiseParams;
/// use qec_core::circuit::DetectorBasis;
/// use qec_decoder::{build_dem, Decoder, DecodingGraph, UnionFindDecoder};
/// use surface_code::{MemoryExperiment, RotatedCode};
///
/// let exp = MemoryExperiment::new(RotatedCode::new(3), NoiseParams::standard(1e-3), 2);
/// let detectors = exp.detectors();
/// let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
/// let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
/// let decoder = UnionFindDecoder::new(&graph);
/// assert!(!decoder.decode(&[]));
/// ```
#[derive(Debug)]
pub struct UnionFindDecoder<'g> {
    graph: &'g DecodingGraph,
    /// Quantized edge capacities (growth units needed to traverse each edge).
    capacity: Vec<u32>,
}

struct Dsu {
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Defect parity of the cluster rooted here.
    parity: Vec<bool>,
    /// Whether the cluster touches the boundary node.
    boundary: Vec<bool>,
}

impl Dsu {
    fn new(n: usize, defects: &[bool], boundary_node: usize) -> Dsu {
        let mut d = Dsu {
            parent: (0..n).collect(),
            rank: vec![0; n],
            parity: defects.to_vec(),
            boundary: vec![false; n],
        };
        d.boundary[boundary_node] = true;
        d
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the clusters of `a` and `b`; returns the new root.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.parity[big] ^= self.parity[small];
        self.boundary[big] |= self.boundary[small];
        big
    }

    fn is_active(&mut self, x: usize) -> bool {
        let r = self.find(x);
        self.parity[r] && !self.boundary[r]
    }
}

impl<'g> UnionFindDecoder<'g> {
    /// Builds the decoder, quantizing edge weights into growth units.
    pub fn new(graph: &'g DecodingGraph) -> UnionFindDecoder<'g> {
        let min_w = graph
            .edges()
            .iter()
            .map(|e| e.weight)
            .fold(f64::INFINITY, f64::min);
        // Quantization granularity matters: a two-defect cluster pairs up
        // (rather than splitting to the boundary) under exactly the same
        // weight comparison MWPM makes, but only if rounding error cannot
        // reorder near-ties. Eight units on the lightest edge keeps the
        // relative error below ~6% while bounding the growth iterations.
        let unit = (min_w / 8.0).max(1e-9);
        let capacity = graph
            .edges()
            .iter()
            .map(|e| ((e.weight / unit).round() as u32).clamp(1, 100_000))
            .collect();
        UnionFindDecoder { graph, capacity }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        self.graph
    }

    /// Runs cluster growth; returns (grown-edge bitmap, dsu) for peeling.
    fn grow(&self, defects: &[usize]) -> (Vec<bool>, Dsu) {
        let n = self.graph.num_nodes() + 1;
        let boundary = self.graph.boundary();
        let mut is_defect = vec![false; n];
        for &d in defects {
            is_defect[d] = true;
        }
        let mut dsu = Dsu::new(n, &is_defect, boundary);
        let edges = self.graph.edges();
        let mut grown = vec![0u32; edges.len()];
        let mut full = vec![false; edges.len()];

        // Nodes whose cluster growth has reached them (starts at defects and
        // the boundary).
        let mut reached = vec![false; n];
        for &d in defects {
            reached[d] = true;
        }
        reached[boundary] = true;

        loop {
            // Identify active clusters.
            let mut any_active = false;
            for &d in defects {
                if dsu.is_active(d) {
                    any_active = true;
                    break;
                }
            }
            if !any_active {
                break;
            }
            // Grow every frontier edge of every active cluster by one unit
            // per active endpoint.
            let mut to_merge: Vec<usize> = Vec::new();
            let mut grew_any = false;
            for (ei, e) in edges.iter().enumerate() {
                if full[ei] {
                    continue;
                }
                let mut inc = 0;
                if reached[e.a] && dsu.is_active(e.a) {
                    inc += 1;
                }
                if reached[e.b] && dsu.is_active(e.b) {
                    inc += 1;
                }
                if inc == 0 {
                    continue;
                }
                grown[ei] += inc;
                grew_any = true;
                if grown[ei] >= self.capacity[ei] {
                    full[ei] = true;
                    to_merge.push(ei);
                }
            }
            if !grew_any {
                // No frontier edge could progress — cannot happen on a
                // connected graph, but guard against infinite loops.
                debug_assert!(false, "union-find growth stalled");
                break;
            }
            for ei in to_merge {
                let e = &edges[ei];
                reached[e.a] = true;
                reached[e.b] = true;
                dsu.union(e.a, e.b);
            }
        }
        (full, dsu)
    }
}

impl Decoder for UnionFindDecoder<'_> {
    fn decode(&self, defects: &[usize]) -> bool {
        if defects.is_empty() {
            return false;
        }
        let n = self.graph.num_nodes() + 1;
        let boundary = self.graph.boundary();
        let (full, _dsu) = self.grow(defects);
        let edges = self.graph.edges();

        // Peeling: build a spanning forest of the grown subgraph, rooted at
        // the boundary first so boundary-terminated strings are available.
        let mut parent_edge = vec![usize::MAX; n];
        let mut visited = vec![false; n];
        let mut order: Vec<usize> = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        let mut roots = vec![boundary];
        roots.extend(defects.iter().copied());
        for root in roots {
            if visited[root] {
                continue;
            }
            visited[root] = true;
            queue.push_back(root);
            while let Some(u) = queue.pop_front() {
                order.push(u);
                for &ei in self.graph.incident(u) {
                    if !full[ei] {
                        continue;
                    }
                    let e = &edges[ei];
                    let v = if e.a == u { e.b } else { e.a };
                    if !visited[v] {
                        visited[v] = true;
                        parent_edge[v] = ei;
                        queue.push_back(v);
                    }
                }
            }
        }

        // Peel leaves towards the roots.
        let mut mark = vec![false; n];
        for &d in defects {
            mark[d] = true;
        }
        let mut flip = false;
        for &v in order.iter().rev() {
            let ei = parent_edge[v];
            if ei == usize::MAX {
                continue;
            }
            if mark[v] {
                let e = &edges[ei];
                flip ^= e.flips_observable;
                let p = if e.a == v { e.b } else { e.a };
                mark[v] = false;
                if p != boundary {
                    mark[p] ^= true;
                }
            }
        }
        debug_assert!(
            (0..n).all(|v| !mark[v] || v == boundary),
            "peeling left an unpaired defect"
        );
        flip
    }

    fn name(&self) -> &'static str {
        "union-find"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use crate::mwpm::MwpmDecoder;
    use qec_core::circuit::DetectorBasis;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    fn setup(d: usize, rounds: usize) -> (DecodingGraph, crate::DetectorErrorModel) {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        (graph, dem)
    }

    #[test]
    fn empty_defects() {
        let (graph, _) = setup(3, 2);
        let decoder = UnionFindDecoder::new(&graph);
        assert!(!decoder.decode(&[]));
    }

    #[test]
    fn elementary_single_faults_are_corrected() {
        // Union-find must exactly correct every fault whose projection is a
        // single graph edge (1 or 2 defects). Hyperedge faults (two-qubit
        // depolarizing components firing 3–4 detectors) can be re-routed
        // through the boundary by the cluster heuristic — that approximation
        // gap versus MWPM is expected and quantified separately.
        for (d, rounds) in [(3usize, 2usize), (5, 3)] {
            let (graph, dem) = setup(d, rounds);
            let decoder = UnionFindDecoder::new(&graph);
            let mut hyper_total = 0;
            let mut hyper_ok = 0;
            for mech in &dem.mechanisms {
                let defects: Vec<usize> = mech
                    .detectors
                    .iter()
                    .filter_map(|&det| graph.node_of_detector(det))
                    .collect();
                match defects.len() {
                    0 => {}
                    1 | 2 => assert_eq!(
                        decoder.decode(&defects),
                        mech.flips_observable,
                        "UF mis-corrected elementary fault at d={d}: {mech:?}"
                    ),
                    _ => {
                        hyper_total += 1;
                        if decoder.decode(&defects) == mech.flips_observable {
                            hyper_ok += 1;
                        }
                    }
                }
            }
            if hyper_total > 0 {
                let rate = hyper_ok as f64 / hyper_total as f64;
                assert!(rate > 0.7, "UF hyperedge accuracy {rate} at d={d}");
            }
        }
    }

    #[test]
    fn mostly_agrees_with_mwpm_on_random_syndromes() {
        let (graph, dem) = setup(3, 3);
        let uf = UnionFindDecoder::new(&graph);
        let mwpm = MwpmDecoder::new(&graph);
        let mut rng = qec_core::Rng::new(77);
        let mut agree = 0;
        let trials = 300;
        for _ in 0..trials {
            // Sample 1–4 mechanisms and XOR their signatures.
            let mut events = vec![false; graph.num_nodes()];
            let mut expected = false;
            let picks = 1 + rng.below(4) as usize;
            for _ in 0..picks {
                let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
                for &det in &mech.detectors {
                    if let Some(node) = graph.node_of_detector(det) {
                        events[node] ^= true;
                    }
                }
                expected ^= mech.flips_observable;
            }
            let defects: Vec<usize> = (0..graph.num_nodes()).filter(|&v| events[v]).collect();
            let a = uf.decode(&defects);
            let b = mwpm.decode(&defects);
            if a == b {
                agree += 1;
            }
            // Both must be at least plausible for very small syndromes: a
            // single mechanism must decode exactly.
            if picks == 1 {
                assert_eq!(a, expected);
                assert_eq!(b, expected);
            }
        }
        let rate = agree as f64 / trials as f64;
        assert!(rate > 0.9, "UF/MWPM agreement too low: {rate}");
    }

    #[test]
    fn capacities_positive() {
        let (graph, _) = setup(3, 2);
        let decoder = UnionFindDecoder::new(&graph);
        assert!(decoder.capacity.iter().all(|&c| c >= 1));
    }
}
