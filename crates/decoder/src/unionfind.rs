//! Weighted union-find decoder (Delfosse–Nickerson).
//!
//! An almost-linear-time alternative to MWPM, used for the paper's largest
//! configurations (d = 9, 11 over 110 rounds) where O(n³) matching per shot
//! is impractical. Clusters grow from each defect in integer weight units;
//! odd clusters keep growing until they merge with another odd cluster or
//! touch the boundary; a peeling pass then extracts the correction and its
//! effect on the logical observable.
//!
//! The stateful entry point is [`UnionFindFactory`] →
//! [`UnionFindBatchDecoder`]: quantized edge capacities are computed once per
//! graph and shared across threads via [`Arc`]; each instance keeps its own
//! cluster/peeling scratch so the per-shot loop does not allocate.

use crate::api::{DecodeOutcome, DecoderFactory, Syndrome, SyndromeDecoder};
use crate::graph::DecodingGraph;
use crate::overlay::{WeightOverlay, ERASED_WEIGHT};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Shared union-find precomputation: per-edge growth capacities, quantized
/// from the graph's matching weights.
#[derive(Debug, Clone)]
pub struct UnionFindCapacities {
    capacity: Vec<u32>,
}

impl UnionFindCapacities {
    /// Approximate heap footprint, for size-bounded artifact caches.
    pub fn approx_bytes(&self) -> usize {
        self.capacity.len() * std::mem::size_of::<u32>()
    }

    /// Quantizes every edge weight into growth units.
    pub fn compute(graph: &DecodingGraph) -> UnionFindCapacities {
        let min_w = graph
            .edges()
            .iter()
            .map(|e| e.weight)
            .fold(f64::INFINITY, f64::min);
        // Quantization granularity matters: a two-defect cluster pairs up
        // (rather than splitting to the boundary) under exactly the same
        // weight comparison MWPM makes, but only if rounding error cannot
        // reorder near-ties. Eight units on the lightest edge keeps the
        // relative error below ~6% while bounding the growth iterations.
        let unit = (min_w / 8.0).max(1e-9);
        let capacity = graph
            .edges()
            .iter()
            .map(|e| ((e.weight / unit).round() as u32).clamp(1, 100_000))
            .collect();
        UnionFindCapacities { capacity }
    }

    /// Per-edge capacities, indexed like [`DecodingGraph::edges`].
    pub fn as_slice(&self) -> &[u32] {
        &self.capacity
    }
}

/// Union-find over cluster roots, with per-cluster defect parity and
/// boundary-contact flags. Buffers persist across shots via
/// [`Dsu::reset`].
#[derive(Debug, Default)]
struct Dsu {
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Defect parity of the cluster rooted here.
    parity: Vec<bool>,
    /// Whether the cluster touches the boundary node.
    boundary: Vec<bool>,
}

impl Dsu {
    fn reset(&mut self, n: usize, defects: &[usize], boundary_node: usize) {
        self.parent.clear();
        self.parent.extend(0..n);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.parity.clear();
        self.parity.resize(n, false);
        for &d in defects {
            self.parity[d] = true;
        }
        self.boundary.clear();
        self.boundary.resize(n, false);
        self.boundary[boundary_node] = true;
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the clusters of `a` and `b`; returns the new root.
    fn union(&mut self, a: usize, b: usize) -> usize {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.parity[big] ^= self.parity[small];
        self.boundary[big] |= self.boundary[small];
        big
    }

    fn is_active(&mut self, x: usize) -> bool {
        let r = self.find(x);
        self.parity[r] && !self.boundary[r]
    }
}

/// Stateful union-find decoder instance: one per worker thread, built
/// through [`UnionFindFactory`]. All growth and peeling buffers are reused
/// across shots.
#[derive(Debug)]
pub struct UnionFindBatchDecoder<'g> {
    graph: &'g DecodingGraph,
    capacities: Arc<UnionFindCapacities>,
    dsu: Dsu,
    grown: Vec<u32>,
    full: Vec<bool>,
    reached: Vec<bool>,
    to_merge: Vec<usize>,
    parent_edge: Vec<usize>,
    visited: Vec<bool>,
    order: Vec<usize>,
    queue: VecDeque<usize>,
    mark: Vec<bool>,
    overlay: WeightOverlay,
}

impl<'g> UnionFindBatchDecoder<'g> {
    /// Builds a standalone instance, quantizing edge weights itself. For
    /// multi-threaded decoding use [`UnionFindFactory`].
    pub fn new(graph: &'g DecodingGraph) -> UnionFindBatchDecoder<'g> {
        UnionFindBatchDecoder::with_capacities(graph, Arc::new(UnionFindCapacities::compute(graph)))
    }

    /// Builds an instance over precomputed (shared) edge capacities.
    ///
    /// # Panics
    ///
    /// Panics if `capacities` was computed for a different-sized graph.
    pub fn with_capacities(
        graph: &'g DecodingGraph,
        capacities: Arc<UnionFindCapacities>,
    ) -> UnionFindBatchDecoder<'g> {
        assert_eq!(
            capacities.as_slice().len(),
            graph.edges().len(),
            "capacity table does not match the decoding graph"
        );
        UnionFindBatchDecoder {
            graph,
            capacities,
            dsu: Dsu::default(),
            grown: Vec::new(),
            full: Vec::new(),
            reached: Vec::new(),
            to_merge: Vec::new(),
            parent_edge: Vec::new(),
            visited: Vec::new(),
            order: Vec::new(),
            queue: VecDeque::new(),
            mark: Vec::new(),
            overlay: WeightOverlay::new(),
        }
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DecodingGraph {
        self.graph
    }

    /// The shared capacity table.
    pub fn capacities(&self) -> &Arc<UnionFindCapacities> {
        &self.capacities
    }

    /// Runs cluster growth; fills `self.full` (grown-edge bitmap) and
    /// `self.dsu` for the peeling pass. With `erased`, edges flagged in the
    /// overlay grow in a single unit (their weight is ~0).
    fn grow(&mut self, defects: &[usize], erased: bool) {
        let n = self.graph.num_nodes() + 1;
        let boundary = self.graph.boundary();
        self.dsu.reset(n, defects, boundary);
        let edges = self.graph.edges();
        let capacity = self.capacities.as_slice();
        self.grown.clear();
        self.grown.resize(edges.len(), 0);
        self.full.clear();
        self.full.resize(edges.len(), false);

        // Nodes whose cluster growth has reached them (starts at defects and
        // the boundary).
        self.reached.clear();
        self.reached.resize(n, false);
        for &d in defects {
            self.reached[d] = true;
        }
        self.reached[boundary] = true;

        loop {
            // Identify active clusters.
            let mut any_active = false;
            for &d in defects {
                if self.dsu.is_active(d) {
                    any_active = true;
                    break;
                }
            }
            if !any_active {
                break;
            }
            // Grow every frontier edge of every active cluster by one unit
            // per active endpoint.
            self.to_merge.clear();
            let mut grew_any = false;
            for (ei, e) in edges.iter().enumerate() {
                if self.full[ei] {
                    continue;
                }
                let mut inc = 0;
                if self.reached[e.a] && self.dsu.is_active(e.a) {
                    inc += 1;
                }
                if self.reached[e.b] && self.dsu.is_active(e.b) {
                    inc += 1;
                }
                if inc == 0 {
                    continue;
                }
                self.grown[ei] += inc;
                grew_any = true;
                let cap = if erased && self.overlay.is_erased(ei) {
                    1
                } else {
                    capacity[ei]
                };
                if self.grown[ei] >= cap {
                    self.full[ei] = true;
                    self.to_merge.push(ei);
                }
            }
            if !grew_any {
                // No frontier edge could progress — cannot happen on a
                // connected graph, but guard against infinite loops.
                debug_assert!(false, "union-find growth stalled");
                break;
            }
            for i in 0..self.to_merge.len() {
                let e = &edges[self.to_merge[i]];
                self.reached[e.a] = true;
                self.reached[e.b] = true;
                self.dsu.union(e.a, e.b);
            }
        }
    }
}

impl UnionFindBatchDecoder<'_> {
    /// Shared decode core. With `correction`, the peeled correction edges are
    /// emitted directly — union-find's correction *is* an edge set, so no
    /// path reconstruction is needed and the emitted XOR equals the returned
    /// flip by construction.
    fn decode_inner(
        &mut self,
        syndrome: &Syndrome,
        mut correction: Option<&mut Vec<usize>>,
    ) -> DecodeOutcome {
        if let Some(c) = correction.as_deref_mut() {
            c.clear();
        }
        let defects = &syndrome.defects;
        if defects.is_empty() {
            // Trivial shot: skip even the clock reads (the common case at
            // low physical error rates).
            return DecodeOutcome::default();
        }
        let start = Instant::now();
        let n = self.graph.num_nodes() + 1;
        let boundary = self.graph.boundary();
        let erased = !syndrome.erasures.is_empty();
        if erased {
            self.overlay.apply(self.graph, &syndrome.erasures);
        }
        self.grow(defects, erased);
        let edges = self.graph.edges();

        // Peeling: build a spanning forest of the grown subgraph, rooted at
        // the boundary first so boundary-terminated strings are available.
        self.parent_edge.clear();
        self.parent_edge.resize(n, usize::MAX);
        self.visited.clear();
        self.visited.resize(n, false);
        self.order.clear();
        self.queue.clear();
        for ri in 0..=defects.len() {
            let root = if ri == 0 { boundary } else { defects[ri - 1] };
            if self.visited[root] {
                continue;
            }
            self.visited[root] = true;
            self.queue.push_back(root);
            while let Some(u) = self.queue.pop_front() {
                self.order.push(u);
                for &ei in self.graph.incident(u) {
                    if !self.full[ei] {
                        continue;
                    }
                    let e = &edges[ei];
                    let v = if e.a == u { e.b } else { e.a };
                    if !self.visited[v] {
                        self.visited[v] = true;
                        self.parent_edge[v] = ei;
                        self.queue.push_back(v);
                    }
                }
            }
        }

        // Peel leaves towards the roots.
        self.mark.clear();
        self.mark.resize(n, false);
        for &d in defects {
            self.mark[d] = true;
        }
        let mut flip = false;
        let mut weight = 0.0;
        for &v in self.order.iter().rev() {
            let ei = self.parent_edge[v];
            if ei == usize::MAX {
                continue;
            }
            if self.mark[v] {
                let e = &edges[ei];
                flip ^= e.flips_observable;
                if let Some(c) = correction.as_deref_mut() {
                    c.push(ei);
                }
                weight += if erased && self.overlay.is_erased(ei) {
                    ERASED_WEIGHT
                } else {
                    e.weight
                };
                let p = if e.a == v { e.b } else { e.a };
                self.mark[v] = false;
                if p != boundary {
                    self.mark[p] ^= true;
                }
            }
        }
        debug_assert!(
            (0..n).all(|v| !self.mark[v] || v == boundary),
            "peeling left an unpaired defect"
        );
        if erased {
            self.overlay.restore();
        }
        DecodeOutcome {
            flip,
            weight,
            defects: defects.len(),
            nanos: start.elapsed().as_nanos() as u64,
        }
    }
}

impl SyndromeDecoder for UnionFindBatchDecoder<'_> {
    fn decode_syndrome(&mut self, syndrome: &Syndrome) -> DecodeOutcome {
        self.decode_inner(syndrome, None)
    }

    fn decode_with_correction(
        &mut self,
        syndrome: &Syndrome,
        correction: &mut Vec<usize>,
    ) -> DecodeOutcome {
        self.decode_inner(syndrome, Some(correction))
    }

    fn name(&self) -> &'static str {
        "union-find"
    }
}

/// Factory for [`UnionFindBatchDecoder`]s: quantizes edge capacities once
/// and shares them (via [`Arc`]) with every instance it builds.
#[derive(Debug)]
pub struct UnionFindFactory<'g> {
    graph: &'g DecodingGraph,
    capacities: Arc<UnionFindCapacities>,
}

impl<'g> UnionFindFactory<'g> {
    /// Quantizes the graph's edge weights (the shared precomputation).
    pub fn new(graph: &'g DecodingGraph) -> UnionFindFactory<'g> {
        UnionFindFactory::with_capacities(graph, Arc::new(UnionFindCapacities::compute(graph)))
    }

    /// Builds the factory around an already-computed capacity table —
    /// the hook a process-wide artifact cache uses to share one table
    /// across runs over content-identical graphs.
    pub fn with_capacities(
        graph: &'g DecodingGraph,
        capacities: Arc<UnionFindCapacities>,
    ) -> UnionFindFactory<'g> {
        UnionFindFactory { graph, capacities }
    }

    /// The shared capacity table.
    pub fn capacities(&self) -> &Arc<UnionFindCapacities> {
        &self.capacities
    }
}

impl DecoderFactory for UnionFindFactory<'_> {
    fn build(&self) -> Box<dyn SyndromeDecoder + '_> {
        Box::new(UnionFindBatchDecoder::with_capacities(
            self.graph,
            Arc::clone(&self.capacities),
        ))
    }

    fn name(&self) -> &'static str {
        "union-find"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dem::build_dem;
    use crate::mwpm::MwpmBatchDecoder;
    use qec_core::circuit::DetectorBasis;
    use qec_core::NoiseParams;
    use surface_code::{MemoryExperiment, RotatedCode};

    fn setup(d: usize, rounds: usize) -> (DecodingGraph, crate::DetectorErrorModel) {
        let exp = MemoryExperiment::new(RotatedCode::new(d), NoiseParams::standard(1e-3), rounds);
        let detectors = exp.detectors();
        let dem = build_dem(&exp.base_circuit(), &detectors, &exp.observable_keys());
        let graph = DecodingGraph::from_dem(&dem, &detectors, DetectorBasis::Z);
        (graph, dem)
    }

    #[test]
    fn empty_defects() {
        let (graph, _) = setup(3, 2);
        let factory = UnionFindFactory::new(&graph);
        let mut decoder = factory.build();
        let outcome = decoder.decode_syndrome(&Syndrome::default());
        assert!(!outcome.flip);
        assert_eq!(outcome.weight, 0.0);
    }

    #[test]
    fn elementary_single_faults_are_corrected() {
        // Union-find must exactly correct every fault whose projection is a
        // single graph edge (1 or 2 defects). Hyperedge faults (two-qubit
        // depolarizing components firing 3–4 detectors) can be re-routed
        // through the boundary by the cluster heuristic — that approximation
        // gap versus MWPM is expected and quantified separately.
        for (d, rounds) in [(3usize, 2usize), (5, 3)] {
            let (graph, dem) = setup(d, rounds);
            let mut decoder = UnionFindBatchDecoder::new(&graph);
            let mut hyper_total = 0;
            let mut hyper_ok = 0;
            let mut syndrome = Syndrome::default();
            for mech in &dem.mechanisms {
                syndrome.clear();
                syndrome.defects.extend(
                    mech.detectors
                        .iter()
                        .filter_map(|&det| graph.node_of_detector(det)),
                );
                match syndrome.len() {
                    0 => {}
                    1 | 2 => assert_eq!(
                        decoder.decode_syndrome(&syndrome).flip,
                        mech.flips_observable,
                        "UF mis-corrected elementary fault at d={d}: {mech:?}"
                    ),
                    _ => {
                        hyper_total += 1;
                        if decoder.decode_syndrome(&syndrome).flip == mech.flips_observable {
                            hyper_ok += 1;
                        }
                    }
                }
            }
            if hyper_total > 0 {
                let rate = hyper_ok as f64 / hyper_total as f64;
                assert!(rate > 0.7, "UF hyperedge accuracy {rate} at d={d}");
            }
        }
    }

    #[test]
    fn mostly_agrees_with_mwpm_on_random_syndromes() {
        let (graph, dem) = setup(3, 3);
        let mut uf = UnionFindBatchDecoder::new(&graph);
        let mut mwpm = MwpmBatchDecoder::new(&graph);
        let mut rng = qec_core::Rng::new(77);
        let mut agree = 0;
        let trials = 300;
        for _ in 0..trials {
            // Sample 1–4 mechanisms and XOR their signatures.
            let mut events = vec![false; graph.num_nodes()];
            let mut expected = false;
            let picks = 1 + rng.below(4) as usize;
            for _ in 0..picks {
                let mech = &dem.mechanisms[rng.below(dem.mechanisms.len() as u64) as usize];
                for &det in &mech.detectors {
                    if let Some(node) = graph.node_of_detector(det) {
                        events[node] ^= true;
                    }
                }
                expected ^= mech.flips_observable;
            }
            let syndrome = Syndrome::new((0..graph.num_nodes()).filter(|&v| events[v]).collect());
            let a = uf.decode_syndrome(&syndrome).flip;
            let b = mwpm.decode_syndrome(&syndrome).flip;
            if a == b {
                agree += 1;
            }
            // Both must be at least plausible for very small syndromes: a
            // single mechanism must decode exactly.
            if picks == 1 {
                assert_eq!(a, expected);
                assert_eq!(b, expected);
            }
        }
        let rate = agree as f64 / trials as f64;
        assert!(rate > 0.9, "UF/MWPM agreement too low: {rate}");
    }

    #[test]
    fn capacities_positive() {
        let (graph, _) = setup(3, 2);
        let capacities = UnionFindCapacities::compute(&graph);
        assert_eq!(capacities.as_slice().len(), graph.edges().len());
        assert!(capacities.as_slice().iter().all(|&c| c >= 1));
    }
}
